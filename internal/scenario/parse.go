package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// maxScenarioBytes bounds a scenario file's size: the decoder is fuzzed and
// exposed to user-supplied paths, so it refuses absurd inputs outright.
const maxScenarioBytes = 4 << 20

// Parse decodes and validates a scenario from JSON. Decoding is strict —
// unknown fields, trailing garbage and oversized documents are errors — and
// every returned error either is a JSON decoding error or wraps ErrInvalid;
// Parse never panics on any input.
func Parse(data []byte) (*Scenario, error) {
	if len(data) > maxScenarioBytes {
		return nil, fieldErrf("scenario", "file larger than %d bytes", maxScenarioBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	sc := &Scenario{}
	if err := dec.Decode(sc); err != nil {
		return nil, fmt.Errorf("scenario: decode: %w", err)
	}
	// Reject trailing tokens ("{}{}", "{} junk"): one document per file.
	if dec.More() {
		return nil, fieldErrf("scenario", "trailing data after scenario document")
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

// Load reads a scenario from a JSON file and validates it.
func Load(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	sc, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sc, nil
}

// Resolve turns cmd-line input into a scenario: a built-in name first, then
// a path to a scenario file (anything containing a path separator or a
// .json suffix skips the built-in lookup). The bool reports whether the
// result is a built-in (and therefore has registered claims).
func Resolve(nameOrPath string) (*Scenario, bool, error) {
	if nameOrPath == "" {
		return nil, false, fieldErrf("scenario", "empty scenario name")
	}
	looksLikePath := strings.ContainsAny(nameOrPath, `/\`) || strings.HasSuffix(nameOrPath, ".json")
	if !looksLikePath {
		if sc := Lookup(nameOrPath); sc != nil {
			return sc, true, nil
		}
	}
	sc, err := Load(nameOrPath)
	if err != nil {
		if !looksLikePath {
			return nil, false, fmt.Errorf("scenario: %q is neither a built-in (%s) nor a readable file: %w",
				nameOrPath, strings.Join(BuiltinNames(), ", "), err)
		}
		return nil, false, err
	}
	return sc, false, nil
}
