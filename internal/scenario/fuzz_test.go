package scenario

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzScenarioParse is the parser's hostile-input gate. The invariants:
//
//   - Parse never panics, whatever the bytes (the fuzz engine enforces
//     this implicitly);
//   - on error, nothing is returned, and validation failures (as opposed
//     to JSON syntax errors) wrap ErrInvalid;
//   - on success, the scenario re-validates and survives a
//     marshal → Parse round trip, so an accepted document is a fixed
//     point of the DSL, not a lucky decode.
//
// Seeds come from the committed example scenarios plus the curated
// malformed corpus in testdata/fuzz/FuzzScenarioParse.
func FuzzScenarioParse(f *testing.F) {
	paths, err := filepath.Glob("testdata/scenarios/*.json")
	if err != nil {
		f.Fatal(err)
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	for _, s := range []string{
		`{"name":"x","windows":10,"fleet":[{"count":1}]}`,
		`{"name":"x","windows":-1,"fleet":[{"count":1}]}`,
		`{"name":"x","windows":10,"fleet":[{"count":1}],"demand":{"kind":"burst","value":1,"high":2,"every":-3,"width":1,"prob":0.5}}`,
		`{"name":"x","windows":10,"fleet":[{"count":1}],"demand":{"kind":"step","value":1,"to":2,"at":"nan"}}`,
		`{"name":"x","windows":10,"fleet":[{"count":1}],"demand":{"kind":"step","at":1e999}}`,
		`{"name":"x","windows":10,"fleet":[{"count":1}]}{}`,
		`null`,
		`{}`,
		`[["deep",["nesting"]]]`,
		`{"name":"x","windows":10,"fleet":[{"count":1}],"capacity":{"kind":"product","factors":[{"kind":"product","factors":[{"kind":"constant","value":1}]}]}}`,
	} {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := Parse(data)
		if err != nil {
			if sc != nil {
				t.Fatalf("Parse returned both a scenario and error %v", err)
			}
			// Errors are JSON decoding errors or typed DSL violations;
			// either way the message stays prefixed and panic-free.
			return
		}
		if err := sc.Validate(); err != nil {
			t.Fatalf("accepted scenario fails re-validation: %v", err)
		}
		out, err := json.Marshal(sc)
		if err != nil {
			t.Fatalf("accepted scenario does not re-marshal: %v", err)
		}
		if _, err := Parse(out); err != nil {
			t.Fatalf("marshal -> Parse round trip failed: %v\ndoc: %s", err, out)
		}
	})
}

// TestParseErrorTaxonomy pins the error contract the fuzz target spot-checks:
// every Parse failure is either a JSON decode error (prefixed
// "scenario: decode:") or wraps ErrInvalid. Nothing escapes untyped.
func TestParseErrorTaxonomy(t *testing.T) {
	inputs := []string{
		`{`,
		`{"name":"x","windows":"ten","fleet":[{"count":1}]}`,
		`{"name":"x","windows":10,"fleet":[{"count":1}],"nope":1}`,
		`{"name":"x","windows":10,"fleet":[{"count":1}],"link":{"loss":{"kind":"constant","value":2}}}`,
		`{"name":"x","windows":10,"fleet":[{"count":1}],"window_seconds":-2}`,
	}
	for _, in := range inputs {
		_, err := Parse([]byte(in))
		if err == nil {
			t.Errorf("Parse accepted %s", in)
			continue
		}
		if !errors.Is(err, ErrInvalid) && !strings.Contains(err.Error(), "scenario: decode:") {
			t.Errorf("untyped parse error for %s: %v", in, err)
		}
	}
}
