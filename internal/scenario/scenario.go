// Package scenario is the declarative workload-scenario DSL and its
// faster-than-real-time execution engine: the layer that turns the paper's
// fixed 2011 evaluation grid (0–3 background connections × 3
// compressibilities) into an open-ended, regression-testable scenario
// surface.
//
// A Scenario composes, from plain Go structs or a JSON file:
//
//   - time-varying load curves (diurnal sinusoid, step, ramp, square wave,
//     heavy-tailed bursts, products of curves) driving per-stream offered
//     demand and NIC capacity;
//   - link perturbations: packet loss with an RTT-dependent Mathis cap,
//     jitter, bandwidth flaps and latency ramps;
//   - heterogeneous fleets: tenant groups with per-group weights, CPU-skew
//     spans and weighted corpus-kind mixes;
//   - replayable traces recorded from cmd/acload runs (internal/trace).
//
// The engine (Run) executes a scenario entirely on the discrete window
// clock of internal/cloudsim's shared-NIC fleet model, so a 1000-VM,
// multi-hour scenario finishes in CI seconds, and emits a byte-deterministic
// JSON artifact: same scenario + same seed = identical bytes, regardless of
// worker parallelism. Built-in scenarios (Builtins) additionally carry
// claims — deterministic shape assertions evaluated on every run — which is
// what keeps the scenario matrix a regression surface instead of a demo.
// See docs/scenarios.md for the DSL reference and the claim catalog.
package scenario

import (
	"errors"
	"fmt"
	"math"
	"time"

	"adaptio/internal/core"
	"adaptio/internal/corpus"
)

// ErrInvalid is the sentinel all scenario validation errors wrap; a decoder
// front end can distinguish "malformed scenario" (errors.Is(err, ErrInvalid)
// or a JSON decoding error) from environmental failures (I/O).
var ErrInvalid = errors.New("scenario: invalid")

// FieldError is a typed validation error naming the offending DSL field.
type FieldError struct {
	Field  string // dotted path, e.g. "fleet[2].cpu.max"
	Reason string
}

// Error implements error.
func (e *FieldError) Error() string {
	return fmt.Sprintf("scenario: invalid field %s: %s", e.Field, e.Reason)
}

// Unwrap makes errors.Is(err, ErrInvalid) true for every FieldError.
func (e *FieldError) Unwrap() error { return ErrInvalid }

func fieldErrf(field, format string, args ...any) error {
	return &FieldError{Field: field, Reason: fmt.Sprintf(format, args...)}
}

// Limits that keep hostile or fat-fingered scenario files from turning into
// memory or CPU bombs: the parser is fuzzed, so every size knob is bounded.
const (
	MaxWindows      = 200_000
	MaxStreams      = 20_000
	MaxGroups       = 64
	MaxCurveFactors = 8
	MaxCurveDepth   = 4
	maxDuration     = 1000 * time.Hour
)

// DefaultSeed seeds scenarios that do not pin one (the repository's
// conventional experiment seed).
const DefaultSeed = 2011

// Defaults for unset scenario fields.
const (
	DefaultNICMBps       = 111.0 // the paper's 1 Gbit/s achievable rate
	DefaultWindowSeconds = 2.0   // the paper's decision interval t
	defaultMixChunkBytes = 64 << 20
)

// Scenario is the root DSL object: one named, seeded, fully deterministic
// workload over the shared-NIC fleet simulator.
type Scenario struct {
	// Name identifies the scenario (built-in names are reserved).
	Name string `json:"name"`
	// Description is free-form documentation.
	Description string `json:"description,omitempty"`

	// Windows is the horizon in decision windows (required unless Trace
	// is set, in which case it defaults to the trace's length).
	Windows int `json:"windows,omitempty"`
	// WindowSeconds is the decision interval t; zero means 2 s (or the
	// trace's window length when replaying a trace).
	WindowSeconds float64 `json:"window_seconds,omitempty"`

	// Fleet is the heterogeneous stream population (required).
	Fleet []Group `json:"fleet"`

	// NICMBps is the shared NIC's nominal application-achievable
	// capacity in MB/s; zero means the paper's 111 MB/s.
	NICMBps float64 `json:"nic_mbps,omitempty"`
	// NICSigma and CPUSigma are the per-window multiplicative lognormal
	// noise sigmas of NIC capacity and per-stream compression speed.
	NICSigma float64 `json:"nic_sigma,omitempty"`
	CPUSigma float64 `json:"cpu_sigma,omitempty"`

	// Capacity, if set, multiplies NIC capacity over time (diurnal
	// background load, maintenance windows). Composes multiplicatively
	// with Link.Flap.
	Capacity *Curve `json:"capacity,omitempty"`
	// Demand, if set, is the default per-stream offered load in MB/s;
	// groups may override it. Unset means saturating senders.
	Demand *Curve `json:"demand,omitempty"`
	// Link describes loss, latency, jitter and bandwidth flaps.
	Link *Link `json:"link,omitempty"`

	// Trace, if set, replays a recorded acload trace
	// (internal/trace.WindowedTrace JSON): the trace's per-window byte
	// counts become the fleet-wide demand curve, split evenly across
	// streams.
	Trace string `json:"trace,omitempty"`

	// Decider names the level-selection policy driving every adaptive
	// stream (core.PolicyNames: "algone", "bandit", "ewma"); empty means
	// the paper's Algorithm 1. Stochastic policies are seeded per stream
	// from Seed, so the artifact stays byte-deterministic.
	Decider string `json:"decider,omitempty"`

	// Seed drives all stochastic components; zero means DefaultSeed.
	Seed uint64 `json:"seed,omitempty"`
	// FlapWindow is the harness's flap horizon in windows; zero means
	// the simulator's default (8).
	FlapWindow int `json:"flap_window,omitempty"`
	// MixChunkMB is how many megabytes a stream sends before re-drawing
	// its corpus kind from the group mix; zero means 64 MB.
	MixChunkMB float64 `json:"mix_chunk_mb,omitempty"`
}

// Group is one homogeneous-policy slice of the fleet: Count streams sharing
// a tenant label, fair-share weight, a CPU-skew span and a corpus mix.
type Group struct {
	// Name labels the group in diagnostics; defaults to the tenant.
	Name string `json:"name,omitempty"`
	// Count is the number of streams (required, >= 1).
	Count int `json:"count"`
	// Weight is the per-stream fair-share weight; zero means 1.
	Weight float64 `json:"weight,omitempty"`
	// Tenant is the owner label aggregated in results; defaults to Name,
	// then to "default".
	Tenant string `json:"tenant,omitempty"`
	// CPU spreads per-stream compression-speed factors linearly across
	// the group (heterogeneous hosts). Zero means factor 1 for all.
	CPU *Span `json:"cpu,omitempty"`
	// Mix is a weighted corpus-kind spec, e.g. "moderate=8,high=1,low=3"
	// (corpus.ParseMix); empty means MODERATE only. Streams re-draw
	// their kind from the mix every MixChunkMB megabytes, so a skewed
	// weighting yields a heavy-tailed compressibility mix over time.
	Mix string `json:"mix,omitempty"`
	// Demand overrides the scenario-level demand curve for this group.
	Demand *Curve `json:"demand,omitempty"`
}

// Span is an inclusive [Min, Max] range spread linearly across a group.
type Span struct {
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

// Link is the shared link's perturbation set.
type Link struct {
	// Loss is the packet-loss fraction in [0, 0.5] over time; streams on
	// a lossy link are capped at the Mathis rate for their effective RTT
	// (base RTT + the level's per-block compression latency).
	Loss *Curve `json:"loss,omitempty"`
	// RTTms is the base round-trip time in milliseconds over time (use
	// a ramp curve for latency ramps); only meaningful with Loss.
	RTTms *Curve `json:"rtt_ms,omitempty"`
	// JitterSigma adds to the NIC noise sigma over time.
	JitterSigma *Curve `json:"jitter_sigma,omitempty"`
	// Flap is a square-wave capacity multiplier (bandwidth flaps),
	// multiplied into Scenario.Capacity.
	Flap *Curve `json:"flap,omitempty"`
}

// Duration is a JSON duration: either a Go duration string ("90s", "1.5h")
// or a bare number of seconds. Negative, NaN and absurd values are rejected
// at decode time with typed errors.
type Duration time.Duration

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) == 0 {
		return fieldErrf("duration", "empty")
	}
	if b[0] == '"' {
		if len(b) < 2 || b[len(b)-1] != '"' {
			return fieldErrf("duration", "unterminated string")
		}
		td, err := time.ParseDuration(string(b[1 : len(b)-1]))
		if err != nil {
			return fieldErrf("duration", "bad duration %s: %v", b, err)
		}
		return d.set(td)
	}
	var secs float64
	if _, err := fmt.Sscanf(string(b), "%g", &secs); err != nil {
		return fieldErrf("duration", "bad duration literal %s", b)
	}
	if math.IsNaN(secs) || math.IsInf(secs, 0) {
		return fieldErrf("duration", "non-finite duration %s", b)
	}
	return d.set(time.Duration(secs * float64(time.Second)))
}

func (d *Duration) set(td time.Duration) error {
	if td < 0 {
		return fieldErrf("duration", "negative duration %v", td)
	}
	if td > maxDuration {
		return fieldErrf("duration", "duration %v exceeds %v", td, maxDuration)
	}
	*d = Duration(td)
	return nil
}

// MarshalJSON renders the duration as a Go duration string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", time.Duration(d))), nil
}

// Seconds returns the duration in seconds.
func (d Duration) Seconds() float64 { return time.Duration(d).Seconds() }

// badFloat reports NaN or infinity — values JSON cannot produce but
// struct-literal authors can.
func badFloat(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }

// Validate checks the scenario against the DSL's contract and returns a
// typed *FieldError (wrapping ErrInvalid) on the first violation. It never
// panics, whatever the input.
func (s *Scenario) Validate() error {
	if s == nil {
		return fieldErrf("scenario", "nil scenario")
	}
	if s.Name == "" {
		return fieldErrf("name", "required")
	}
	if s.Windows < 0 || s.Windows > MaxWindows {
		return fieldErrf("windows", "must be in [0, %d], got %d", MaxWindows, s.Windows)
	}
	if s.Windows == 0 && s.Trace == "" {
		return fieldErrf("windows", "required unless a trace is replayed")
	}
	if badFloat(s.WindowSeconds) || s.WindowSeconds < 0 || s.WindowSeconds > 3600 {
		return fieldErrf("window_seconds", "must be in [0, 3600], got %v", s.WindowSeconds)
	}
	if badFloat(s.NICMBps) || s.NICMBps < 0 || s.NICMBps > 1e9 {
		return fieldErrf("nic_mbps", "must be in [0, 1e9], got %v", s.NICMBps)
	}
	if badFloat(s.NICSigma) || s.NICSigma < 0 || s.NICSigma > 2 {
		return fieldErrf("nic_sigma", "must be in [0, 2], got %v", s.NICSigma)
	}
	if badFloat(s.CPUSigma) || s.CPUSigma < 0 || s.CPUSigma > 2 {
		return fieldErrf("cpu_sigma", "must be in [0, 2], got %v", s.CPUSigma)
	}
	if s.FlapWindow < 0 || s.FlapWindow > MaxWindows {
		return fieldErrf("flap_window", "must be in [0, %d], got %d", MaxWindows, s.FlapWindow)
	}
	if badFloat(s.MixChunkMB) || s.MixChunkMB < 0 || s.MixChunkMB > 1e6 {
		return fieldErrf("mix_chunk_mb", "must be in [0, 1e6], got %v", s.MixChunkMB)
	}
	if s.Decider != "" && !core.ValidPolicy(s.Decider) {
		return fieldErrf("decider", "unknown policy %q (want one of %v)", s.Decider, core.PolicyNames())
	}
	if len(s.Fleet) == 0 {
		return fieldErrf("fleet", "at least one group required")
	}
	if len(s.Fleet) > MaxGroups {
		return fieldErrf("fleet", "at most %d groups, got %d", MaxGroups, len(s.Fleet))
	}
	total := 0
	for gi := range s.Fleet {
		g := &s.Fleet[gi]
		prefix := fmt.Sprintf("fleet[%d]", gi)
		if g.Count < 1 {
			return fieldErrf(prefix+".count", "must be >= 1, got %d", g.Count)
		}
		total += g.Count
		if total > MaxStreams {
			return fieldErrf("fleet", "more than %d streams", MaxStreams)
		}
		if badFloat(g.Weight) || g.Weight < 0 || g.Weight > 1e6 {
			return fieldErrf(prefix+".weight", "must be in [0, 1e6], got %v", g.Weight)
		}
		if g.CPU != nil {
			if badFloat(g.CPU.Min) || badFloat(g.CPU.Max) ||
				g.CPU.Min <= 0 || g.CPU.Max < g.CPU.Min || g.CPU.Max > 100 {
				return fieldErrf(prefix+".cpu", "need 0 < min <= max <= 100, got [%v, %v]", g.CPU.Min, g.CPU.Max)
			}
		}
		if _, err := corpus.ParseMix(g.Mix); err != nil {
			return fieldErrf(prefix+".mix", "%v", err)
		}
		if err := g.Demand.validate(prefix+".demand", curveDemand); err != nil {
			return err
		}
	}
	if err := s.Capacity.validate("capacity", curveMultiplier); err != nil {
		return err
	}
	if err := s.Demand.validate("demand", curveDemand); err != nil {
		return err
	}
	if s.Link != nil {
		if err := s.Link.Loss.validate("link.loss", curveLoss); err != nil {
			return err
		}
		if err := s.Link.RTTms.validate("link.rtt_ms", curveRTT); err != nil {
			return err
		}
		if err := s.Link.JitterSigma.validate("link.jitter_sigma", curveSigma); err != nil {
			return err
		}
		if err := s.Link.Flap.validate("link.flap", curveMultiplier); err != nil {
			return err
		}
	}
	return nil
}
