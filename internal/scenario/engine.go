package scenario

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync"

	"adaptio/internal/cloudsim"
	"adaptio/internal/coord"
	"adaptio/internal/core"
	"adaptio/internal/corpus"
	"adaptio/internal/trace"
)

// Rig names a deliberate property-breaker: the scenario suite's sentinel
// mechanism (the DisableRevert / CheatFreeze lineage). Running a built-in
// scenario with a rig must make the specific claim the rig attacks fail —
// that failure is what proves the claim is load-bearing rather than
// vacuously true. Rigs never appear outside tests and sentinel CLI runs.
type Rig string

// The rig catalog.
const (
	// RigNone runs the scenario as written.
	RigNone Rig = ""
	// RigPinAdaptiveHeavy pins the adaptive variant's streams to the top
	// level, erasing adaptivity (attacks "adaptive beats static-HEAVY").
	RigPinAdaptiveHeavy Rig = "pin-adaptive-heavy"
	// RigPinAdaptiveNO pins the adaptive variant to no compression
	// (attacks "adaptive tracks the best static choice").
	RigPinAdaptiveNO Rig = "pin-adaptive-no"
	// RigNoLoss strips the link's loss model (attacks "under loss, LIGHT
	// overtakes HEAVY": without loss the ordering reverses).
	RigNoLoss Rig = "no-loss"
	// RigFlatWeights forces every stream's fair-share weight to 1
	// (attacks weighted-fairness claims of heterogeneous fleets).
	RigFlatWeights Rig = "flat-weights"
	// RigOscillate replaces the adaptive and coordinated variants'
	// policies with a scheme that flips levels every window (attacks
	// every flap- and switch-bound claim).
	RigOscillate Rig = "oscillate"
)

// ParseRig parses a rig name ("" and "none" mean RigNone).
func ParseRig(s string) (Rig, error) {
	switch Rig(s) {
	case RigNone, Rig("none"):
		return RigNone, nil
	case RigPinAdaptiveHeavy, RigPinAdaptiveNO, RigNoLoss, RigFlatWeights, RigOscillate:
		return Rig(s), nil
	default:
		return RigNone, fmt.Errorf("scenario: unknown rig %q", s)
	}
}

// Options parameterize a scenario run.
type Options struct {
	// Parallel is the number of variants simulated concurrently; values
	// < 1 mean 1. Results are byte-identical for every value — each
	// variant is a self-contained simulation with its own RNGs, schemes
	// and coordinator, so scheduling order cannot leak into them.
	Parallel int
	// Rig applies a sentinel property-breaker; see Rig.
	Rig Rig
}

// VariantNames is the fixed variant set every scenario runs, in artifact
// order: the adaptive solo-decider fleet, the coordinated fleet, and the
// four static levels as baselines.
var VariantNames = []string{
	"adaptive", "coordinated",
	"static-no", "static-light", "static-medium", "static-heavy",
}

// TenantTotal aggregates one tenant's streams within a variant.
type TenantTotal struct {
	Tenant    string `json:"tenant"`
	Streams   int    `json:"streams"`
	AppBytes  int64  `json:"app_bytes"`
	WireBytes int64  `json:"wire_bytes"`
}

// VariantResult is one variant's outcome: exact byte totals, harness-counted
// switch/flap metrics, the per-window byte series (the deterministic
// regression surface golden files pin) and per-tenant aggregates.
type VariantResult struct {
	Name              string  `json:"name"`
	AppBytes          int64   `json:"app_bytes"`
	WireBytes         int64   `json:"wire_bytes"`
	GoodputMBps       float64 `json:"goodput_mbps"`
	Switches          int     `json:"switches"`
	Flaps             int     `json:"flaps"`
	MaxStreamSwitches int     `json:"max_stream_switches"`
	MaxStreamFlaps    int     `json:"max_stream_flaps"`
	// Probes and WastedProbes sum the solo deciders' probe economics over
	// the variant's streams (zero for static, coordinated and rigged
	// variants, whose schemes are not core.Deciders). WastedProbes is the
	// probe-economy axis of the decider acceptance bound.
	Probes          int           `json:"probes,omitempty"`
	WastedProbes    int           `json:"wasted_probes,omitempty"`
	WindowAppBytes  []int64       `json:"window_app_bytes"`
	WindowWireBytes []int64       `json:"window_wire_bytes"`
	Tenants         []TenantTotal `json:"tenants"`
}

// ClaimResult is one evaluated claim.
type ClaimResult struct {
	Name   string `json:"name"`
	Pass   bool   `json:"pass"`
	Detail string `json:"detail"`
}

// Result is a full scenario run: all variants plus, for built-in scenarios,
// the evaluated claims. Marshaling a Result is byte-deterministic for a
// given (scenario, seed, rig): only struct fields in fixed order, integer
// byte series, and floats derived from those integers — no wall-clock, no
// map iteration, no pointer identity.
type Result struct {
	Scenario         string          `json:"scenario"`
	Seed             uint64          `json:"seed"`
	Decider          string          `json:"decider,omitempty"`
	Rig              string          `json:"rig,omitempty"`
	Streams          int             `json:"streams"`
	Windows          int             `json:"windows"`
	WindowSeconds    float64         `json:"window_seconds"`
	SimulatedSeconds float64         `json:"simulated_seconds"`
	Variants         []VariantResult `json:"variants"`
	Claims           []ClaimResult   `json:"claims,omitempty"`
}

// Variant returns the named variant's result, or nil.
func (r *Result) Variant(name string) *VariantResult {
	for i := range r.Variants {
		if r.Variants[i].Name == name {
			return &r.Variants[i]
		}
	}
	return nil
}

// MarshalArtifact renders the result as the canonical expdriver JSON
// artifact: indented, trailing newline, byte-identical across runs and
// across worker parallelism for the same (scenario, seed, rig).
func (r *Result) MarshalArtifact() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: marshal artifact: %w", err)
	}
	return append(data, '\n'), nil
}

// ClaimsPass reports whether every evaluated claim passed (vacuously true
// for scenarios without claims).
func (r *Result) ClaimsPass() bool {
	for _, c := range r.Claims {
		if !c.Pass {
			return false
		}
	}
	return true
}

// oscillator is RigOscillate's policy: it flips between levels 0 and 1
// every window, the worst-behaved scheme the ladder admits.
type oscillator struct{ level int }

func (o *oscillator) Observe(float64) int { o.level ^= 1; return o.level }
func (o *oscillator) Level() int          { return o.level }

// streamSpec is one compiled stream: everything variant-independent.
type streamSpec struct {
	weight float64
	tenant string
	cpu    float64
	seed   uint64 // per-stream seed (also feeds stochastic deciders)
	kind   cloudsim.KindSchedule
	demand func(tSec float64) float64
}

// engine holds a compiled scenario ready to run its variants.
type engine struct {
	sc       Scenario // effective copy, defaults applied
	specs    []streamSpec
	profiles []cloudsim.CodecProfile
	rig      Rig
}

// deriveSeed maps (seed, index) to a per-stream seed via a splitmix64 step,
// so sibling streams draw independent noise and burst phases.
func deriveSeed(seed uint64, i int) uint64 {
	x := seed + 0x9e3779b97f4a7c15*uint64(i+1)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

// mixKindSchedule re-draws the stream's corpus kind from the weighted mix
// every chunkBytes of application data, hashing (seed, chunk): a skewed mix
// becomes a heavy-tailed compressibility process without any mutable state.
func mixKindSchedule(mix []corpus.Kind, chunkBytes int64, seed uint64) cloudsim.KindSchedule {
	if len(mix) == 1 {
		return cloudsim.ConstantKind(mix[0])
	}
	return func(off int64) corpus.Kind {
		if off < 0 {
			off = 0
		}
		chunk := uint64(off / chunkBytes)
		return mix[int(burstHash(seed, chunk)*float64(len(mix)))]
	}
}

// compile resolves defaults, loads a replay trace if any, and expands the
// fleet groups into per-stream specs.
func compile(sc *Scenario, rig Rig) (*engine, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	e := &engine{sc: *sc, rig: rig, profiles: cloudsim.ReferenceProfiles()}
	eff := &e.sc

	// Trace replay: the recorded per-window byte counts become the
	// fleet-wide demand curve, split evenly across streams.
	var traceDemand []float64 // fleet-wide MB/s per window
	if eff.Trace != "" {
		wt, err := trace.LoadWindowed(eff.Trace)
		if err != nil {
			return nil, err
		}
		if eff.WindowSeconds == 0 {
			eff.WindowSeconds = wt.WindowSeconds
		}
		if eff.Windows == 0 || eff.Windows > len(wt.Windows) {
			eff.Windows = len(wt.Windows)
		}
		traceDemand = make([]float64, len(wt.Windows))
		for i, w := range wt.Windows {
			traceDemand[i] = float64(w.AppBytes) / wt.WindowSeconds / 1e6
		}
	}
	if eff.Seed == 0 {
		eff.Seed = DefaultSeed
	}
	if eff.WindowSeconds == 0 {
		eff.WindowSeconds = DefaultWindowSeconds
	}
	if eff.NICMBps == 0 {
		eff.NICMBps = DefaultNICMBps
	}
	if eff.MixChunkMB == 0 {
		eff.MixChunkMB = defaultMixChunkBytes / 1e6
	}
	if eff.Windows <= 0 {
		return nil, fieldErrf("windows", "replay trace %q is empty", eff.Trace)
	}

	total := 0
	for i := range eff.Fleet {
		total += eff.Fleet[i].Count
	}
	chunkBytes := int64(eff.MixChunkMB * 1e6)
	if chunkBytes < 1 {
		chunkBytes = 1
	}

	e.specs = make([]streamSpec, 0, total)
	idx := 0
	for gi := range eff.Fleet {
		g := &eff.Fleet[gi]
		tenant := g.Tenant
		if tenant == "" {
			tenant = g.Name
		}
		if tenant == "" {
			tenant = "default"
		}
		weight := g.Weight
		if weight == 0 {
			weight = 1
		}
		mixSpec := g.Mix
		var mix []corpus.Kind
		if mixSpec == "" {
			mix = []corpus.Kind{corpus.Moderate}
		} else {
			var err error
			mix, err = corpus.ParseMix(mixSpec)
			if err != nil {
				return nil, fieldErrf(fmt.Sprintf("fleet[%d].mix", gi), "%v", err)
			}
		}
		demandCurve := g.Demand
		if demandCurve == nil {
			demandCurve = eff.Demand
		}
		for j := 0; j < g.Count; j++ {
			cpu := 1.0
			if g.CPU != nil {
				if g.Count == 1 {
					cpu = (g.CPU.Min + g.CPU.Max) / 2
				} else {
					cpu = g.CPU.Min + (g.CPU.Max-g.CPU.Min)*float64(j)/float64(g.Count-1)
				}
			}
			sseed := deriveSeed(eff.Seed, idx)
			var demand func(float64) float64
			switch {
			case traceDemand != nil:
				per := traceDemand
				n, ws := float64(total), eff.WindowSeconds
				demand = func(t float64) float64 {
					w := int(math.Floor(t/ws + 0.5))
					if w < 0 || w >= len(per) {
						return 0
					}
					return per[w] / n
				}
			case demandCurve != nil:
				demand = demandCurve.fn(sseed)
			}
			e.specs = append(e.specs, streamSpec{
				weight: weight,
				tenant: tenant,
				cpu:    cpu,
				seed:   sseed,
				kind:   mixKindSchedule(mix, chunkBytes, sseed),
				demand: demand,
			})
			idx++
		}
	}
	return e, nil
}

// env compiles the scenario's link and capacity perturbations into a
// cloudsim FleetEnv (nil when the scenario has none).
func (e *engine) env() *cloudsim.FleetEnv {
	sc := &e.sc
	var capacity, sigma, loss, rtt func(float64) float64
	capCurve := sc.Capacity
	var flap *Curve
	if sc.Link != nil {
		flap = sc.Link.Flap
		sigma = sc.Link.JitterSigma.fn(sc.Seed)
		if e.rig != RigNoLoss {
			loss = sc.Link.Loss.fn(sc.Seed)
			rtt = sc.Link.RTTms.scaled(sc.Seed, 1e-3)
		}
	}
	switch {
	case capCurve != nil && flap != nil:
		cf, ff := capCurve.fn(sc.Seed), flap.fn(sc.Seed)
		capacity = func(t float64) float64 { return cf(t) * ff(t) }
	case capCurve != nil:
		capacity = capCurve.fn(sc.Seed)
	case flap != nil:
		capacity = flap.fn(sc.Seed)
	}
	if capacity == nil && sigma == nil && loss == nil && rtt == nil {
		return nil
	}
	return &cloudsim.FleetEnv{Capacity: capacity, ExtraSigma: sigma, Loss: loss, RTTSeconds: rtt}
}

// schemeFactory returns the per-stream scheme constructor for a variant,
// with the rig's substitutions applied.
func (e *engine) schemeFactory(variant string) (func(spec streamSpec) cloudsim.Scheme, error) {
	levels := len(e.profiles)
	switch variant {
	case "adaptive":
		switch e.rig {
		case RigPinAdaptiveHeavy:
			return func(streamSpec) cloudsim.Scheme { return cloudsim.StaticScheme(levels - 1) }, nil
		case RigPinAdaptiveNO:
			return func(streamSpec) cloudsim.Scheme { return cloudsim.StaticScheme(0) }, nil
		case RigOscillate:
			return func(streamSpec) cloudsim.Scheme { return &oscillator{} }, nil
		}
		return func(spec streamSpec) cloudsim.Scheme {
			return core.MustNewPolicy(e.sc.Decider, core.PolicyConfig{
				Levels: levels,
				Seed:   spec.seed,
			})
		}, nil
	case "coordinated":
		if e.rig == RigOscillate {
			return func(streamSpec) cloudsim.Scheme { return &oscillator{} }, nil
		}
		c, err := coord.New(coord.Config{
			BudgetBytesPerSec: e.sc.NICMBps * 1e6,
			Levels:            levels,
		})
		if err != nil {
			return nil, fmt.Errorf("scenario: coordinator: %w", err)
		}
		return func(spec streamSpec) cloudsim.Scheme {
			w := spec.weight
			if e.rig == RigFlatWeights {
				w = 1
			}
			return c.Register(coord.StreamConfig{Weight: w, Tenant: spec.tenant})
		}, nil
	case "static-no":
		return func(streamSpec) cloudsim.Scheme { return cloudsim.StaticScheme(0) }, nil
	case "static-light":
		return func(streamSpec) cloudsim.Scheme { return cloudsim.StaticScheme(1) }, nil
	case "static-medium":
		return func(streamSpec) cloudsim.Scheme { return cloudsim.StaticScheme(2) }, nil
	case "static-heavy":
		return func(streamSpec) cloudsim.Scheme { return cloudsim.StaticScheme(levels - 1) }, nil
	default:
		return nil, fmt.Errorf("scenario: unknown variant %q", variant)
	}
}

// runVariant executes one variant as a self-contained fleet simulation.
func (e *engine) runVariant(variant string) (VariantResult, error) {
	vr := VariantResult{Name: variant}
	mk, err := e.schemeFactory(variant)
	if err != nil {
		return vr, err
	}
	streams := make([]cloudsim.FleetStream, len(e.specs))
	for i, spec := range e.specs {
		w := spec.weight
		if e.rig == RigFlatWeights {
			w = 1
		}
		streams[i] = cloudsim.FleetStream{
			Kind:       spec.kind,
			Scheme:     mk(spec),
			Weight:     w,
			CPUFactor:  spec.cpu,
			Tenant:     spec.tenant,
			DemandMBps: spec.demand,
		}
	}
	vr.WindowAppBytes = make([]int64, 0, e.sc.Windows)
	vr.WindowWireBytes = make([]int64, 0, e.sc.Windows)
	res, err := cloudsim.RunFleet(cloudsim.FleetConfig{
		NICMBps:       e.sc.NICMBps,
		Windows:       e.sc.Windows,
		WindowSeconds: e.sc.WindowSeconds,
		Profiles:      e.profiles,
		Streams:       streams,
		Seed:          e.sc.Seed,
		NICSigma:      e.sc.NICSigma,
		CPUSigma:      e.sc.CPUSigma,
		FlapWindow:    e.sc.FlapWindow,
		Env:           e.env(),
		Trace: func(s cloudsim.FleetWindowSample) {
			vr.WindowAppBytes = append(vr.WindowAppBytes, s.AppBytes)
			vr.WindowWireBytes = append(vr.WindowWireBytes, s.WireBytes)
		},
	})
	if err != nil {
		return vr, fmt.Errorf("scenario: variant %s: %w", variant, err)
	}
	vr.AppBytes, vr.WireBytes = res.AppBytes, res.WireBytes
	vr.Switches, vr.Flaps = res.Switches, res.Flaps
	for i := range streams {
		if d, ok := streams[i].Scheme.(core.Decider); ok {
			ps := d.PolicyStats()
			vr.Probes += ps.Probes
			vr.WastedProbes += ps.WastedProbes
		}
	}
	vr.GoodputMBps = res.GoodputMBps(e.sc.WindowSeconds)
	byTenant := make(map[string]*TenantTotal)
	for _, ps := range res.PerStream {
		if ps.Switches > vr.MaxStreamSwitches {
			vr.MaxStreamSwitches = ps.Switches
		}
		if ps.Flaps > vr.MaxStreamFlaps {
			vr.MaxStreamFlaps = ps.Flaps
		}
		tt := byTenant[ps.Tenant]
		if tt == nil {
			tt = &TenantTotal{Tenant: ps.Tenant}
			byTenant[ps.Tenant] = tt
		}
		tt.Streams++
		tt.AppBytes += ps.AppBytes
		tt.WireBytes += ps.WireBytes
	}
	for _, tt := range byTenant {
		vr.Tenants = append(vr.Tenants, *tt)
	}
	sort.Slice(vr.Tenants, func(i, j int) bool { return vr.Tenants[i].Tenant < vr.Tenants[j].Tenant })
	return vr, nil
}

// Run executes the scenario: every variant in VariantNames, optionally in
// parallel, then the scenario's registered claims. The returned Result is
// identical — byte-for-byte once marshaled — for any Options.Parallel.
func Run(sc *Scenario, opts Options) (*Result, error) {
	e, err := compile(sc, opts.Rig)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Scenario:         e.sc.Name,
		Seed:             e.sc.Seed,
		Decider:          e.sc.Decider,
		Rig:              string(opts.Rig),
		Streams:          len(e.specs),
		Windows:          e.sc.Windows,
		WindowSeconds:    e.sc.WindowSeconds,
		SimulatedSeconds: float64(e.sc.Windows) * e.sc.WindowSeconds,
		Variants:         make([]VariantResult, len(VariantNames)),
	}

	workers := opts.Parallel
	if workers < 1 {
		workers = 1
	}
	sem := make(chan struct{}, workers)
	errs := make([]error, len(VariantNames))
	var wg sync.WaitGroup
	for i, name := range VariantNames {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res.Variants[i], errs[i] = e.runVariant(name)
		}(i, name)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, cl := range ClaimsFor(e.sc.Name) {
		res.Claims = append(res.Claims, cl.evaluate(&e.sc, res))
	}
	return res, nil
}
