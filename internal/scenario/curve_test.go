package scenario

import (
	"errors"
	"math"
	"testing"
	"time"
)

func sec(s float64) Duration { return Duration(time.Duration(s * float64(time.Second))) }

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestCurveEval(t *testing.T) {
	cases := []struct {
		name string
		c    Curve
		t    float64
		want float64
	}{
		{"constant", Curve{Kind: "constant", Value: 3}, 123, 3},
		{"diurnal peak", Curve{Kind: "diurnal", Value: 10, Amplitude: 0.5, Period: sec(100)}, 25, 15},
		{"diurnal trough", Curve{Kind: "diurnal", Value: 10, Amplitude: 0.5, Period: sec(100)}, 75, 5},
		{"diurnal phase", Curve{Kind: "diurnal", Value: 10, Amplitude: 0.5, Period: sec(100), Phase: 0.5}, 75, 15},
		{"step before", Curve{Kind: "step", Value: 1, To: 9, At: sec(50)}, 49.9, 1},
		{"step after", Curve{Kind: "step", Value: 1, To: 9, At: sec(50)}, 50, 9},
		{"ramp before", Curve{Kind: "ramp", Value: 1, To: 3, At: sec(10), Over: sec(20)}, 5, 1},
		{"ramp middle", Curve{Kind: "ramp", Value: 1, To: 3, At: sec(10), Over: sec(20)}, 20, 2},
		{"ramp after", Curve{Kind: "ramp", Value: 1, To: 3, At: sec(10), Over: sec(20)}, 40, 3},
		{"square high", Curve{Kind: "square", High: 7, Low: 2, Period: sec(10), Duty: 0.3}, 2, 7},
		{"square low", Curve{Kind: "square", High: 7, Low: 2, Period: sec(10), Duty: 0.3}, 5, 2},
		{"square next period", Curve{Kind: "square", High: 7, Low: 2, Period: sec(10), Duty: 0.3}, 12, 7},
		{"product", Curve{Kind: "product", Factors: []Curve{
			{Kind: "constant", Value: 4},
			{Kind: "step", Value: 0.5, To: 1, At: sec(100)},
		}}, 0, 2},
		{"nil-safe unknown kind", Curve{Kind: "wavelet"}, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.c.eval(tc.t, 1); !almost(got, tc.want) {
				t.Fatalf("eval(%v) = %v, want %v", tc.t, got, tc.want)
			}
		})
	}
	var nilCurve *Curve
	if got := nilCurve.eval(5, 1); got != 0 {
		t.Fatalf("nil curve eval = %v, want 0", got)
	}
	if nilCurve.fn(1) != nil || nilCurve.scaled(1, 2) != nil {
		t.Fatal("nil curve must compile to nil hooks")
	}
}

func TestBurstCurve(t *testing.T) {
	c := Curve{Kind: "burst", Value: 1, High: 10, Every: sec(10), Width: sec(4), Prob: 1}
	if got := c.eval(2, 7); got != 10 {
		t.Fatalf("inside burst window with prob 1: got %v, want 10", got)
	}
	if got := c.eval(6, 7); got != 1 {
		t.Fatalf("past burst width: got %v, want baseline 1", got)
	}
	c.Prob = 0
	if got := c.eval(2, 7); got != 1 {
		t.Fatalf("prob 0: got %v, want baseline 1", got)
	}

	// The per-slot coin is a pure function of (seed, slot): identical
	// across calls, and its long-run burst frequency tracks Prob.
	c.Prob = 0.3
	bursts := 0
	for slot := 0; slot < 2000; slot++ {
		t0 := float64(slot)*10 + 1
		a, b := c.eval(t0, 42), c.eval(t0, 42)
		if a != b {
			t.Fatalf("slot %d: eval not deterministic: %v vs %v", slot, a, b)
		}
		if a == 10 {
			bursts++
		}
	}
	if f := float64(bursts) / 2000; f < 0.25 || f > 0.35 {
		t.Fatalf("burst frequency %v far from prob 0.3", f)
	}
	// Different seeds decorrelate the schedule.
	same := 0
	for slot := 0; slot < 2000; slot++ {
		t0 := float64(slot)*10 + 1
		if (c.eval(t0, 1) == 10) == (c.eval(t0, 2) == 10) {
			same++
		}
	}
	if same == 2000 {
		t.Fatal("burst schedules identical across different seeds")
	}
}

func TestCurveValidateRejects(t *testing.T) {
	deep := Curve{Kind: "constant", Value: 1}
	for i := 0; i < MaxCurveDepth+1; i++ {
		deep = Curve{Kind: "product", Factors: []Curve{deep}}
	}
	manyFactors := make([]Curve, MaxCurveFactors+1)
	for i := range manyFactors {
		manyFactors[i] = Curve{Kind: "constant", Value: 1}
	}
	cases := []struct {
		name string
		c    Curve
		mode curveMode
	}{
		{"unknown kind", Curve{Kind: "wavelet"}, curveDemand},
		{"negative value", Curve{Kind: "constant", Value: -1}, curveDemand},
		{"NaN value", Curve{Kind: "constant", Value: math.NaN()}, curveDemand},
		{"over mode ceiling", Curve{Kind: "constant", Value: 0.9}, curveLoss},
		{"diurnal no period", Curve{Kind: "diurnal", Value: 1}, curveDemand},
		{"diurnal amplitude > 1", Curve{Kind: "diurnal", Value: 1, Amplitude: 2, Period: sec(10)}, curveDemand},
		{"diurnal peak over ceiling", Curve{Kind: "diurnal", Value: 0.3, Amplitude: 1, Period: sec(10)}, curveLoss},
		{"ramp no over", Curve{Kind: "ramp", Value: 1, To: 2}, curveDemand},
		{"square duty 1", Curve{Kind: "square", High: 1, Low: 0, Period: sec(10), Duty: 1}, curveDemand},
		{"square no period", Curve{Kind: "square", High: 1, Low: 0, Duty: 0.5}, curveDemand},
		{"burst width > every", Curve{Kind: "burst", Value: 1, High: 2, Every: sec(5), Width: sec(6), Prob: 0.5}, curveDemand},
		{"burst prob > 1", Curve{Kind: "burst", Value: 1, High: 2, Every: sec(5), Width: sec(2), Prob: 1.5}, curveDemand},
		{"product empty", Curve{Kind: "product"}, curveDemand},
		{"product too many factors", Curve{Kind: "product", Factors: manyFactors}, curveDemand},
		{"product too deep", deep, curveDemand},
		{"negative duration literal", Curve{Kind: "step", Value: 1, To: 2, At: Duration(-time.Second)}, curveDemand},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.c.validate("test", tc.mode)
			if !errors.Is(err, ErrInvalid) {
				t.Fatalf("validate accepted %+v (err %v)", tc.c, err)
			}
		})
	}
}

// TestCurveValidatedNeverNegative spot-checks the eval contract claims rely
// on: a curve that passes validation emits only finite, non-negative levels.
func TestCurveValidatedNeverNegative(t *testing.T) {
	curves := []Curve{
		{Kind: "diurnal", Value: 5, Amplitude: 1, Period: sec(60), Phase: 0.9},
		{Kind: "square", High: 3, Low: 0, Period: sec(7), Duty: 0.2, Phase: 0.99},
		{Kind: "burst", Value: 0, High: 8, Every: sec(3), Width: sec(1), Prob: 0.5},
		{Kind: "ramp", Value: 4, To: 0, At: sec(5), Over: sec(10)},
	}
	for _, c := range curves {
		c := c
		if err := c.validate("test", curveDemand); err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		for ti := 0; ti < 1000; ti++ {
			v := c.eval(float64(ti)*0.7, 3)
			if badFloat(v) || v < 0 {
				t.Fatalf("%s curve emitted %v at t=%v", c.Kind, v, float64(ti)*0.7)
			}
		}
	}
}
