package scenario

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden artifacts with current output")

func loadMini(t *testing.T) *Scenario {
	t.Helper()
	sc, err := Load("testdata/scenarios/mini.json")
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func artifact(t *testing.T, sc *Scenario, opts Options) []byte {
	t.Helper()
	res, err := Run(sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	data, err := res.MarshalArtifact()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestRunDeterministicAcrossParallel is the artifact-stability property: the
// same scenario and seed must marshal to byte-identical JSON across repeated
// runs and across every worker parallelism — each variant is a self-contained
// simulation, so scheduling cannot leak into results. Without this, golden
// files and cross-commit artifact diffs would be meaningless.
func TestRunDeterministicAcrossParallel(t *testing.T) {
	base := artifact(t, loadMini(t), Options{Parallel: 1})
	for _, par := range []int{1, 2, 8} {
		for rep := 0; rep < 2; rep++ {
			got := artifact(t, loadMini(t), Options{Parallel: par})
			if !bytes.Equal(got, base) {
				t.Fatalf("artifact differs at parallel=%d rep=%d (%d vs %d bytes)",
					par, rep, len(got), len(base))
			}
		}
	}

	// Sanity that the property test has teeth: a different seed must
	// actually change the bytes.
	reseeded := loadMini(t)
	reseeded.Seed = 8
	if bytes.Equal(artifact(t, reseeded, Options{Parallel: 2}), base) {
		t.Fatal("changing the seed did not change the artifact — determinism test is vacuous")
	}
}

// TestBuiltinDeterminism re-runs a built-in (with link perturbations and
// claims) and requires identical bytes, covering the claim-evaluation path
// the mini scenario's golden misses.
func TestBuiltinDeterminism(t *testing.T) {
	a := artifact(t, Lookup("lossy"), Options{Parallel: 4})
	b := artifact(t, Lookup("lossy"), Options{Parallel: 1})
	if !bytes.Equal(a, b) {
		t.Fatal("built-in lossy artifact differs between runs")
	}
}

// TestGoldenArtifact pins the mini scenario's artifact byte-for-byte. Any
// change to the simulator, the DSL defaults, RNG derivation or the artifact
// schema shows up here as a diff; regenerate deliberately with
//
//	go test ./internal/scenario -run TestGoldenArtifact -update
func TestGoldenArtifact(t *testing.T) {
	got := artifact(t, loadMini(t), Options{Parallel: 2})
	golden := filepath.Join("testdata", "golden", "mini.artifact.json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("artifact drifted from golden %s (%d vs %d bytes); inspect the diff and rerun with -update only if the change is intended",
			golden, len(got), len(want))
	}
}
