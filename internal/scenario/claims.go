package scenario

import (
	"fmt"
)

// A Claim is a deterministic shape assertion over a scenario's Result: the
// piece that turns a built-in scenario from a demo into a regression gate.
// Claims compare variants against each other (adaptive vs static ladders,
// coordinated vs solo) rather than against absolute numbers, so they encode
// the paper's qualitative physics, not simulator constants. Each scenario's
// headline claims are attackable by a Rig (RigTargets), and the shape-test
// suite proves every rig actually flips exactly the claims it targets — a
// claim matrix no rig can break would be vacuous.
type Claim struct {
	// Name identifies the claim in artifacts and test output.
	Name string
	// Desc is the one-line statement of the property.
	Desc string
	// check returns pass/fail plus a diagnostic detail line.
	check func(sc *Scenario, r *Result) (bool, string)
}

// evaluate runs the claim and renders its ClaimResult.
func (c Claim) evaluate(sc *Scenario, r *Result) ClaimResult {
	pass, detail := c.check(sc, r)
	return ClaimResult{Name: c.Name, Pass: pass, Detail: detail}
}

// Claim calibration constants. Margins are deliberately loose against seed
// noise (every claim must hold for any reasonable seed) while tight enough
// that the paired rig breaks them decisively; see docs/scenarios.md for the
// calibration table.
const (
	// troughBand selects "trough" windows: demand within the lowest
	// troughBand fraction of the curve's [min, max] span.
	troughBand = 0.25
	// diurnalFlapsPerStreamHour bounds the adaptive fleet's flap rate
	// under diurnal load, per stream per simulated hour (measured ~53 at
	// the pinned seed; an oscillating policy lands near 1790).
	diurnalFlapsPerStreamHour = 80.0
	// trackBestStaticFrac is how close adaptive must stay to the best
	// static level's goodput on the bursty heavy-tail mix (measured 0.89
	// at the pinned seed; pinned-NO lands near 0.53).
	trackBestStaticFrac = 0.85
	// compressionPayoffFrac is how much the best compressed static level
	// must beat no-compression by on the heavy-tail mix (scenario sanity:
	// if compression stopped paying, the tracking claim would be hollow).
	compressionPayoffFrac = 1.20
	// lossSettleWindows skips the windows right after a loss transition
	// before summing goodput, so claims compare steady states.
	lossSettleWindows = 10
	// hetFairnessFloor is the minimum gold:silver per-stream goodput
	// ratio the weighted fleet must maintain (configured weight is 3x).
	hetFairnessFloor = 1.5
	// scaleFlapsPerStreamHour bounds the 1000-VM fleet's adaptive flap
	// rate, per stream per simulated hour (measured ~125 at the pinned
	// seed — mutual contention noise scales with fleet size — while an
	// oscillating policy lands near 1790).
	scaleFlapsPerStreamHour = 200.0
)

// sumRange sums v.WindowAppBytes over window indices [from, to).
func sumRange(v *VariantResult, from, to int) int64 {
	if v == nil {
		return 0
	}
	if from < 0 {
		from = 0
	}
	if to > len(v.WindowAppBytes) {
		to = len(v.WindowAppBytes)
	}
	var s int64
	for i := from; i < to; i++ {
		s += v.WindowAppBytes[i]
	}
	return s
}

// sumAt sums v.WindowAppBytes at the given window indices.
func sumAt(v *VariantResult, idx []int) int64 {
	if v == nil {
		return 0
	}
	var s int64
	for _, i := range idx {
		if i >= 0 && i < len(v.WindowAppBytes) {
			s += v.WindowAppBytes[i]
		}
	}
	return s
}

// troughWindows returns the indices of windows whose scenario-level demand
// sits in the lowest troughBand fraction of the demand curve's span.
func troughWindows(sc *Scenario, r *Result) []int {
	if sc.Demand == nil {
		return nil
	}
	vals := make([]float64, r.Windows)
	lo, hi := 0.0, 0.0
	for w := 0; w < r.Windows; w++ {
		v := sc.Demand.eval(float64(w)*r.WindowSeconds, sc.Seed)
		vals[w] = v
		if w == 0 || v < lo {
			lo = v
		}
		if w == 0 || v > hi {
			hi = v
		}
	}
	if hi <= lo {
		return nil
	}
	thr := lo + troughBand*(hi-lo)
	var idx []int
	for w, v := range vals {
		if v <= thr {
			idx = append(idx, w)
		}
	}
	return idx
}

// flapsPerStreamHour normalizes a variant's fleet-wide flap count.
func flapsPerStreamHour(r *Result, v *VariantResult) float64 {
	if v == nil || r.Streams == 0 || r.SimulatedSeconds <= 0 {
		return 0
	}
	return float64(v.Flaps) / float64(r.Streams) / (r.SimulatedSeconds / 3600)
}

// lossOnsetWindow finds the first window at which the scenario's loss curve
// is positive (-1 if it never is).
func lossOnsetWindow(sc *Scenario, r *Result) int {
	if sc.Link == nil || sc.Link.Loss == nil {
		return -1
	}
	for w := 0; w < r.Windows; w++ {
		if sc.Link.Loss.eval(float64(w)*r.WindowSeconds, sc.Seed) > 0 {
			return w
		}
	}
	return -1
}

// claimRegistry maps built-in scenario names to their claims.
var claimRegistry = map[string][]Claim{
	"diurnal": {
		{
			Name: "adaptive-beats-heavy-troughs",
			Desc: "In demand troughs, the adaptive fleet's goodput strictly beats static-HEAVY: slow hosts cannot compress at HEAVY fast enough even for trough demand.",
			check: func(sc *Scenario, r *Result) (bool, string) {
				idx := troughWindows(sc, r)
				ad, hv := sumAt(r.Variant("adaptive"), idx), sumAt(r.Variant("static-heavy"), idx)
				return ad > hv, fmt.Sprintf("trough windows %d: adaptive %d bytes vs static-heavy %d", len(idx), ad, hv)
			},
		},
		{
			Name: "adaptive-flap-bound",
			Desc: fmt.Sprintf("The adaptive fleet flaps at most %.0f times per stream-hour across the diurnal cycle.", diurnalFlapsPerStreamHour),
			check: func(sc *Scenario, r *Result) (bool, string) {
				f := flapsPerStreamHour(r, r.Variant("adaptive"))
				return f <= diurnalFlapsPerStreamHour,
					fmt.Sprintf("adaptive flaps/stream-hour %.2f (bound %.0f)", f, diurnalFlapsPerStreamHour)
			},
		},
	},
	"heavytail": {
		{
			Name: "adaptive-tracks-best-static",
			Desc: fmt.Sprintf("On the bursty heavy-tail mix, adaptive goodput stays within %.0f%% of the best static level.", trackBestStaticFrac*100),
			check: func(sc *Scenario, r *Result) (bool, string) {
				best, bestName := int64(0), ""
				for _, n := range []string{"static-no", "static-light", "static-medium", "static-heavy"} {
					if v := r.Variant(n); v != nil && v.AppBytes > best {
						best, bestName = v.AppBytes, n
					}
				}
				ad := r.Variant("adaptive").AppBytes
				return float64(ad) >= trackBestStaticFrac*float64(best),
					fmt.Sprintf("adaptive %d bytes vs best static %s %d (floor %.2f)", ad, bestName, best, trackBestStaticFrac)
			},
		},
		{
			Name: "compression-pays",
			Desc: fmt.Sprintf("The best compressed static level beats no-compression by at least %.0f%% (scenario sanity).", (compressionPayoffFrac-1)*100),
			check: func(sc *Scenario, r *Result) (bool, string) {
				best := int64(0)
				for _, n := range []string{"static-light", "static-medium", "static-heavy"} {
					if v := r.Variant(n); v != nil && v.AppBytes > best {
						best = v.AppBytes
					}
				}
				no := r.Variant("static-no").AppBytes
				return float64(best) >= compressionPayoffFrac*float64(no),
					fmt.Sprintf("best compressed %d bytes vs no-compression %d", best, no)
			},
		},
	},
	"lossy": {
		{
			Name: "light-overtakes-heavy-under-loss",
			Desc: "After the link degrades to 2% loss, static-LIGHT's goodput overtakes static-HEAVY: loss-limited TCP throughput is inversely proportional to effective RTT, and HEAVY's per-block compression latency dominates it.",
			check: func(sc *Scenario, r *Result) (bool, string) {
				onset := lossOnsetWindow(sc, r)
				if onset < 0 {
					// The rigged (no-loss) run must fail here, not pass
					// vacuously: with a quiet link HEAVY stays ahead.
					onset = 0
				}
				from := onset + lossSettleWindows
				lt := sumRange(r.Variant("static-light"), from, r.Windows)
				hv := sumRange(r.Variant("static-heavy"), from, r.Windows)
				return lt > hv, fmt.Sprintf("windows [%d,%d): static-light %d bytes vs static-heavy %d", from, r.Windows, lt, hv)
			},
		},
		{
			Name: "heavy-wins-quiet-link",
			Desc: "Before loss onset the ordering is reversed: on a quiet contended NIC, HEAVY's ratio advantage beats LIGHT (this is what makes the overtake a crossover, not a constant).",
			check: func(sc *Scenario, r *Result) (bool, string) {
				onset := lossOnsetWindow(sc, r)
				end := onset
				if onset < 0 {
					end = r.Windows
				}
				from := lossSettleWindows // skip decider warmup noise window 0
				hv := sumRange(r.Variant("static-heavy"), from, end)
				lt := sumRange(r.Variant("static-light"), from, end)
				return hv > lt, fmt.Sprintf("windows [%d,%d): static-heavy %d bytes vs static-light %d", from, end, hv, lt)
			},
		},
	},
	"flaps": {
		{
			Name: "coord-dwell-bounds-switches",
			Desc: "Hysteresis dwell is a hard rate limit: no coordinated stream can switch levels more than once per HysteresisWindows windows, whatever the NIC does.",
			check: func(sc *Scenario, r *Result) (bool, string) {
				bound := r.Windows/3 + 1 // coord.DefaultHysteresisWindows
				got := r.Variant("coordinated").MaxStreamSwitches
				return got <= bound, fmt.Sprintf("coordinated max per-stream switches %d (dwell bound %d over %d windows)", got, bound, r.Windows)
			},
		},
		{
			Name: "coordination-calms-flapping",
			Desc: "Under bandwidth flaps the coordinated fleet flaps strictly less than the solo-decider fleet, which chases every capacity edge.",
			check: func(sc *Scenario, r *Result) (bool, string) {
				co, ad := r.Variant("coordinated").Flaps, r.Variant("adaptive").Flaps
				return co < ad, fmt.Sprintf("coordinated flaps %d vs solo %d", co, ad)
			},
		},
	},
	"hetfleet": {
		{
			Name: "weighted-fairness-holds",
			Desc: fmt.Sprintf("Gold streams (weight 3) sustain at least %.1fx the per-stream goodput of silver streams in the coordinated fleet.", hetFairnessFloor),
			check: func(sc *Scenario, r *Result) (bool, string) {
				return tenantRatioAtLeast(r.Variant("coordinated"), "gold", "silver", hetFairnessFloor)
			},
		},
		{
			Name: "nic-fairness-static",
			Desc: fmt.Sprintf("The weighted NIC alone (static-LIGHT fleet, no coordinator) already yields gold at least %.1fx silver per stream: fairness is a link property, not a policy artifact.", hetFairnessFloor),
			check: func(sc *Scenario, r *Result) (bool, string) {
				return tenantRatioAtLeast(r.Variant("static-light"), "gold", "silver", hetFairnessFloor)
			},
		},
	},
	"diurnal-lossy-1000": {
		{
			Name: "adaptive-beats-heavy-at-scale",
			Desc: "Across the full 1000-VM diurnal cycle with the evening loss episode, the adaptive fleet's aggregate goodput strictly beats static-HEAVY.",
			check: func(sc *Scenario, r *Result) (bool, string) {
				ad, hv := r.Variant("adaptive").AppBytes, r.Variant("static-heavy").AppBytes
				return ad > hv, fmt.Sprintf("adaptive %d bytes vs static-heavy %d", ad, hv)
			},
		},
		{
			Name: "scale-flap-bound",
			Desc: fmt.Sprintf("The 1000-VM adaptive fleet flaps at most %.0f times per stream-hour.", scaleFlapsPerStreamHour),
			check: func(sc *Scenario, r *Result) (bool, string) {
				f := flapsPerStreamHour(r, r.Variant("adaptive"))
				return f <= scaleFlapsPerStreamHour,
					fmt.Sprintf("adaptive flaps/stream-hour %.2f (bound %.0f)", f, scaleFlapsPerStreamHour)
			},
		},
	},
}

// tenantRatioAtLeast checks tenant a's per-stream goodput is at least k
// times tenant b's within the variant.
func tenantRatioAtLeast(v *VariantResult, a, b string, k float64) (bool, string) {
	if v == nil {
		return false, "variant missing"
	}
	var ta, tb *TenantTotal
	for i := range v.Tenants {
		switch v.Tenants[i].Tenant {
		case a:
			ta = &v.Tenants[i]
		case b:
			tb = &v.Tenants[i]
		}
	}
	if ta == nil || tb == nil || ta.Streams == 0 || tb.Streams == 0 {
		return false, fmt.Sprintf("tenants %s/%s missing from variant %s", a, b, v.Name)
	}
	pa := float64(ta.AppBytes) / float64(ta.Streams)
	pb := float64(tb.AppBytes) / float64(tb.Streams)
	ratio := 0.0
	if pb > 0 {
		ratio = pa / pb
	}
	return pb > 0 && pa >= k*pb,
		fmt.Sprintf("%s %.1f MB/stream vs %s %.1f MB/stream (ratio %.2f, floor %.1f)", a, pa/1e6, b, pb/1e6, ratio, k)
}

// ClaimsFor returns the claims registered for a built-in scenario name
// (nil for user-authored scenarios).
func ClaimsFor(name string) []Claim { return claimRegistry[name] }

// RigTargets maps each rig to the built-in claims it is designed to break,
// as scenario-name → claim-names. The shape-test suite walks this table:
// for every entry, running the scenario with the rig must fail exactly
// those claims' properties.
func RigTargets() map[Rig]map[string][]string {
	return map[Rig]map[string][]string{
		RigPinAdaptiveHeavy: {"diurnal": {"adaptive-beats-heavy-troughs"}},
		RigPinAdaptiveNO:    {"heavytail": {"adaptive-tracks-best-static"}},
		RigNoLoss:           {"lossy": {"light-overtakes-heavy-under-loss"}},
		RigFlatWeights:      {"hetfleet": {"weighted-fairness-holds", "nic-fairness-static"}},
		RigOscillate: {
			"diurnal": {"adaptive-flap-bound"},
			"flaps":   {"coord-dwell-bounds-switches", "coordination-calms-flapping"},
		},
	}
}
