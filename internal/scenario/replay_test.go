package scenario

import (
	"context"
	"io"
	"net"
	"path/filepath"
	"testing"
	"time"

	"adaptio/internal/loadgen"
	"adaptio/internal/trace"
)

// startEchoSink runs a throwaway in-process TCP echo service.
func startEchoSink(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				io.Copy(conn, conn)
				if tc, ok := conn.(*net.TCPConn); ok {
					tc.CloseWrite()
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// TestTraceRecordReplayRoundTrip closes the record/replay loop end to end:
// a real seeded loadgen run against a live TCP echo sink records its
// per-window completed bytes (the cmd/acload -trace-out path), the trace
// file is replayed through the fleet simulator as the demand curve, and the
// simulated fleet must reproduce the recorded per-window byte counts.
//
// The tolerance is tight and structural, not statistical: replay splits each
// window's bytes evenly over the fleet and every stream truncates to whole
// bytes, so the only admissible error is one byte per stream per window
// (plus float round-off). The scenario is provisioned so nothing else can
// bind — 32 streams at the ~146 MB/s no-compression pipeline ceiling and a
// wide NIC dwarf anything a loopback load run can record in a window.
func TestTraceRecordReplayRoundTrip(t *testing.T) {
	const (
		windowSeconds = 0.25
		replayStreams = 32
	)

	rec := trace.NewRecorder(windowSeconds)
	report, err := loadgen.Run(context.Background(), loadgen.Config{
		Addr:       startEchoSink(t),
		Conns:      8,
		Duration:   900 * time.Millisecond,
		Seed:       2011,
		MinPayload: 8 << 10,
		MaxPayload: 64 << 10,
		Verify:     true,
		Recorder:   rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Completed == 0 {
		t.Fatal("load run completed zero cycles; nothing to record")
	}

	wt := rec.Snapshot()
	if len(wt.Windows) == 0 {
		t.Fatal("recorder captured no windows")
	}
	tracePath := filepath.Join(t.TempDir(), "run.trace.json")
	if err := wt.Save(tracePath); err != nil {
		t.Fatal(err)
	}

	sc := &Scenario{
		Name:    "replay-roundtrip",
		Fleet:   []Group{{Name: "replay", Count: replayStreams}},
		NICMBps: 50_000,
		Trace:   tracePath,
		Seed:    2011,
	}
	res, err := Run(sc, Options{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Windows != len(wt.Windows) {
		t.Fatalf("replay ran %d windows, trace has %d", res.Windows, len(wt.Windows))
	}
	if res.WindowSeconds != windowSeconds {
		t.Fatalf("replay window %v s, trace recorded %v s", res.WindowSeconds, windowSeconds)
	}

	v := res.Variant("static-no")
	if v == nil {
		t.Fatal("static-no variant missing")
	}
	const perWindowSlack = int64(replayStreams) + 2 // per-stream byte truncation
	var totalDiff int64
	for w, rec := range wt.Windows {
		got := v.WindowAppBytes[w]
		diff := rec.AppBytes - got
		if diff < 0 {
			diff = -diff
		}
		totalDiff += diff
		if diff > perWindowSlack {
			t.Errorf("window %d: replayed %d bytes vs recorded %d (diff %d > slack %d)",
				w, got, rec.AppBytes, diff, perWindowSlack)
		}
	}
	if maxTotal := perWindowSlack * int64(res.Windows); totalDiff > maxTotal {
		t.Errorf("total replay drift %d bytes exceeds %d (trace total %d)",
			totalDiff, maxTotal, wt.TotalAppBytes())
	}
	t.Logf("recorded %d windows / %d bytes; replay drift %d bytes across %d streams",
		len(wt.Windows), wt.TotalAppBytes(), totalDiff, replayStreams)
}

// TestReplayMissingTrace keeps trace errors typed and non-panicking.
func TestReplayMissingTrace(t *testing.T) {
	sc := &Scenario{
		Name:  "replay-missing",
		Fleet: []Group{{Count: 1}},
		Trace: filepath.Join(t.TempDir(), "does-not-exist.json"),
	}
	if _, err := Run(sc, Options{}); err == nil {
		t.Fatal("Run succeeded with a missing trace file")
	}
}
