package metrics_test

import (
	"errors"
	"math"
	"strings"
	"testing"

	"adaptio/internal/cloudsim"
	"adaptio/internal/metrics"
)

const sampleProcStat = `cpu  10132153 290696 3084719 46828483 16683 0 25195 175 0 0
cpu0 1393280 32966 572056 13343292 6130 0 17875 100 0 0
intr 1462898
ctxt 115315133
btime 1305504000
processes 33245
procs_running 1
procs_blocked 0
`

func TestParseProcStat(t *testing.T) {
	c, err := metrics.ParseProcStat(sampleProcStat)
	if err != nil {
		t.Fatal(err)
	}
	if c.User != 10132153 || c.Nice != 290696 || c.System != 3084719 {
		t.Fatalf("user/nice/system wrong: %+v", c)
	}
	if c.Idle != 46828483 || c.IOWait != 16683 || c.IRQ != 0 || c.SoftIRQ != 25195 || c.Steal != 175 {
		t.Fatalf("idle/iowait/irq/softirq/steal wrong: %+v", c)
	}
	if c.Busy() != 10132153+290696+3084719+0+25195+175 {
		t.Fatalf("Busy() = %d", c.Busy())
	}
}

func TestParseProcStatOldKernel(t *testing.T) {
	// Kernels before 2.6.11 report only 4-7 fields after "cpu".
	c, err := metrics.ParseProcStat("cpu  100 0 50 1000 5 2 3 9\n")
	if err != nil {
		t.Fatal(err)
	}
	if c.Steal != 9 {
		t.Fatalf("steal = %d", c.Steal)
	}
}

func TestParseProcStatErrors(t *testing.T) {
	if _, err := metrics.ParseProcStat("intr 12345\n"); !errors.Is(err, metrics.ErrNoCPULine) {
		t.Fatalf("missing cpu line: got %v", err)
	}
	if _, err := metrics.ParseProcStat("cpu  a b c d e f g h\n"); err == nil {
		t.Fatal("garbage counters accepted")
	}
}

func TestParsePidStat(t *testing.T) {
	// Field 2 (comm) may contain spaces and parens — the classic trap.
	line := `4242 (qemu-system (x86)) S 1 4242 4242 0 -1 4202752 51297 0 1 0 77310 22955 0 0 20 0 5 0 5026 1106852⁠864 23407`
	line = strings.ReplaceAll(line, "⁠", "") // keep the literal clean
	p, err := metrics.ParsePidStat(line)
	if err != nil {
		t.Fatal(err)
	}
	if p.UTime != 77310 || p.STime != 22955 {
		t.Fatalf("utime/stime = %d/%d", p.UTime, p.STime)
	}
}

func TestParsePidStatErrors(t *testing.T) {
	if _, err := metrics.ParsePidStat("no parens here"); err == nil {
		t.Fatal("missing comm accepted")
	}
	if _, err := metrics.ParsePidStat("1 (x) S 2 3"); err == nil {
		t.Fatal("short line accepted")
	}
	if _, err := metrics.ParsePidStat("1 (x) S 1 2 3 4 5 6 7 8 9 10 NaN 12 13 14 15 16 17 18"); err == nil {
		t.Fatal("bad utime accepted")
	}
}

func TestSamplerDeltas(t *testing.T) {
	snapshots := []string{
		"cpu  100 0 100 800 0 0 0 0\n",
		"cpu  130 0 150 820 0 0 0 0\n", // +30 usr, +50 sys, +20 idle => 100 jiffies
	}
	i := 0
	src := metrics.FuncSource(func() (string, error) {
		s := snapshots[i]
		if i < len(snapshots)-1 {
			i++
		}
		return s, nil
	})
	s := metrics.NewSampler(src)
	if _, ok, err := s.Sample(); err != nil || ok {
		t.Fatalf("first sample should prime only: ok=%v err=%v", ok, err)
	}
	u, ok, err := s.Sample()
	if err != nil || !ok {
		t.Fatalf("second sample failed: %v", err)
	}
	if math.Abs(u.USR-30) > 1e-9 || math.Abs(u.SYS-50) > 1e-9 || math.Abs(u.Idle-20) > 1e-9 {
		t.Fatalf("utilization = %+v", u)
	}
	if math.Abs(u.Busy()-80) > 1e-9 {
		t.Fatalf("busy = %v", u.Busy())
	}
}

func TestSamplerCounterWrap(t *testing.T) {
	snapshots := []string{
		"cpu  1000 0 100 800 0 0 0 0\n",
		"cpu  900 0 150 900 0 0 0 0\n", // user went backwards (wrap/migration)
	}
	i := 0
	src := metrics.FuncSource(func() (string, error) {
		s := snapshots[i]
		if i < len(snapshots)-1 {
			i++
		}
		return s, nil
	})
	s := metrics.NewSampler(src)
	s.Sample()
	u, ok, err := s.Sample()
	if err != nil {
		t.Fatal(err)
	}
	if ok && u.USR < 0 {
		t.Fatalf("negative utilization after wrap: %+v", u)
	}
}

func TestSamplerZeroDelta(t *testing.T) {
	src := metrics.FuncSource(func() (string, error) {
		return "cpu  100 0 100 800 0 0 0 0\n", nil
	})
	s := metrics.NewSampler(src)
	s.Sample()
	if _, ok, err := s.Sample(); ok || err != nil {
		t.Fatalf("zero-delta interval should return ok=false: ok=%v err=%v", ok, err)
	}
}

func TestSamplerSourceError(t *testing.T) {
	src := metrics.FuncSource(func() (string, error) { return "", errors.New("boom") })
	s := metrics.NewSampler(src)
	if _, _, err := s.Sample(); err == nil {
		t.Fatal("source error swallowed")
	}
}

// TestSamplerAgainstSimulatedCounters is the integration test tying the
// measurement methodology to the simulator: sampling cloudsim's synthetic
// /proc/stat at 1 s intervals must recover the configured breakdown, the
// exact procedure behind Figure 1.
func TestSamplerAgainstSimulatedCounters(t *testing.T) {
	want := cloudsim.CPUBreakdown{USR: 5, SYS: 25, HIRQ: 2, SIRQ: 12, STEAL: 8}
	counters := cloudsim.NewStatCounters(want, 99)
	src := metrics.FuncSource(func() (string, error) {
		counters.Advance(1.0)
		return counters.ProcStat(), nil
	})
	s := metrics.NewSampler(src)
	var agg metrics.Utilization
	n := 0
	for i := 0; i < 130; i++ { // ">= 120 individual samples" per the paper
		u, ok, err := s.Sample()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue
		}
		agg.USR += u.USR
		agg.SYS += u.SYS
		agg.HIRQ += u.HIRQ
		agg.SIRQ += u.SIRQ
		agg.STEAL += u.STEAL
		n++
	}
	if n < 120 {
		t.Fatalf("only %d valid samples", n)
	}
	f := 1 / float64(n)
	check := func(name string, got, want float64) {
		if math.Abs(got-want) > want*0.15+0.5 {
			t.Errorf("%s: sampled %.1f%%, configured %.1f%%", name, got, want)
		}
	}
	check("USR", agg.USR*f, want.USR)
	check("SYS", agg.SYS*f, want.SYS)
	check("HIRQ", agg.HIRQ*f, want.HIRQ)
	check("SIRQ", agg.SIRQ*f, want.SIRQ)
	check("STEAL", agg.STEAL*f, want.STEAL)
}

func TestFileSourceReadsRealProcStat(t *testing.T) {
	// On Linux, parse the real /proc/stat end to end — the acprobe path.
	src := metrics.FileSource("/proc/stat")
	text, err := src.ReadStat()
	if err != nil {
		t.Skipf("no /proc/stat on this system: %v", err)
	}
	if _, err := metrics.ParseProcStat(text); err != nil {
		t.Fatalf("real /proc/stat unparseable: %v", err)
	}
}
