// Package metrics implements the measurement methodology of Section II-A:
// sampling the Linux /proc/stat interface at one-second intervals and
// computing CPU-utilization percentages split into user (USR), kernel (SYS),
// hardware-interrupt (HIRQ), software-interrupt (SIRQ) and steal (STEAL)
// time from the counter deltas.
//
// The same parser and sampler run against three sources: the real
// /proc/stat of the machine (cmd/acprobe), the simulated counters emitted by
// internal/cloudsim (the Figure 1 experiment), and the per-process
// /proc/<pid>/stat format the paper used to observe qemu from the host.
package metrics

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// CPUCounters are the cumulative jiffy counters of a /proc/stat "cpu" line.
type CPUCounters struct {
	User, Nice, System, Idle, IOWait, IRQ, SoftIRQ, Steal uint64
}

// Busy returns the non-idle jiffies.
func (c CPUCounters) Busy() uint64 {
	return c.User + c.Nice + c.System + c.IRQ + c.SoftIRQ + c.Steal
}

// Total returns all accounted jiffies.
func (c CPUCounters) Total() uint64 {
	return c.Busy() + c.Idle + c.IOWait
}

// ErrNoCPULine is returned when the input contains no aggregate cpu line.
var ErrNoCPULine = errors.New("metrics: no 'cpu' line in /proc/stat input")

// ParseProcStat extracts the aggregate "cpu" line from /proc/stat content.
func ParseProcStat(text string) (CPUCounters, error) {
	var c CPUCounters
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 8 || fields[0] != "cpu" {
			continue
		}
		vals := make([]uint64, 0, 8)
		for _, f := range fields[1:9] {
			v, err := strconv.ParseUint(f, 10, 64)
			if err != nil {
				return c, fmt.Errorf("metrics: bad counter %q: %v", f, err)
			}
			vals = append(vals, v)
		}
		for len(vals) < 8 {
			vals = append(vals, 0) // pre-2.6.11 kernels lack steal
		}
		c.User, c.Nice, c.System, c.Idle = vals[0], vals[1], vals[2], vals[3]
		c.IOWait, c.IRQ, c.SoftIRQ, c.Steal = vals[4], vals[5], vals[6], vals[7]
		return c, nil
	}
	return c, ErrNoCPULine
}

// PidCPU holds the cumulative user and system jiffies of one process, from
// /proc/<pid>/stat (fields 14 and 15). This is how the paper measured the
// qemu process's true CPU cost from the KVM host.
type PidCPU struct {
	UTime, STime uint64
}

// ParsePidStat parses a /proc/<pid>/stat line. The comm field (2) may
// contain spaces and parentheses, so parsing anchors on the *last* ')'.
func ParsePidStat(text string) (PidCPU, error) {
	var p PidCPU
	end := strings.LastIndexByte(text, ')')
	if end < 0 {
		return p, errors.New("metrics: malformed pid stat: no comm field")
	}
	rest := strings.Fields(text[end+1:])
	// rest[0] is field 3 (state); utime is field 14, stime 15.
	const utimeIdx, stimeIdx = 14 - 3, 15 - 3
	if len(rest) <= stimeIdx {
		return p, errors.New("metrics: malformed pid stat: too few fields")
	}
	u, err := strconv.ParseUint(rest[utimeIdx], 10, 64)
	if err != nil {
		return p, fmt.Errorf("metrics: bad utime: %v", err)
	}
	s, err := strconv.ParseUint(rest[stimeIdx], 10, 64)
	if err != nil {
		return p, fmt.Errorf("metrics: bad stime: %v", err)
	}
	p.UTime, p.STime = u, s
	return p, nil
}

// Utilization is one sampled interval expressed in percent of one CPU.
type Utilization struct {
	USR   float64 // user + nice
	SYS   float64
	HIRQ  float64
	SIRQ  float64
	STEAL float64
	Idle  float64 // idle + iowait
}

// Busy returns the summed non-idle percentage.
func (u Utilization) Busy() float64 { return u.USR + u.SYS + u.HIRQ + u.SIRQ + u.STEAL }

// Source provides /proc/stat-formatted snapshots.
type Source interface {
	ReadStat() (string, error)
}

// FileSource reads a path (normally /proc/stat) on every sample.
type FileSource string

// ReadStat implements Source.
func (f FileSource) ReadStat() (string, error) {
	b, err := os.ReadFile(string(f))
	return string(b), err
}

// FuncSource adapts a function (e.g. cloudsim counters) to Source.
type FuncSource func() (string, error)

// ReadStat implements Source.
func (f FuncSource) ReadStat() (string, error) { return f() }

// Sampler computes utilization percentages from successive counter deltas,
// the exact methodology of the paper's 1 s sampling loop.
type Sampler struct {
	src      Source
	prev     CPUCounters
	havePrev bool
}

// NewSampler creates a sampler over src.
func NewSampler(src Source) *Sampler { return &Sampler{src: src} }

// Sample reads the source and returns the utilization since the previous
// call. The first call primes the baseline and returns ok=false.
func (s *Sampler) Sample() (u Utilization, ok bool, err error) {
	text, err := s.src.ReadStat()
	if err != nil {
		return u, false, err
	}
	cur, err := ParseProcStat(text)
	if err != nil {
		return u, false, err
	}
	if !s.havePrev {
		s.prev = cur
		s.havePrev = true
		return u, false, nil
	}
	delta := func(a, b uint64) float64 {
		if a < b { // counter wrap or vm migration: skip interval
			return 0
		}
		return float64(a - b)
	}
	du := delta(cur.User, s.prev.User) + delta(cur.Nice, s.prev.Nice)
	ds := delta(cur.System, s.prev.System)
	dh := delta(cur.IRQ, s.prev.IRQ)
	dsi := delta(cur.SoftIRQ, s.prev.SoftIRQ)
	dst := delta(cur.Steal, s.prev.Steal)
	di := delta(cur.Idle, s.prev.Idle) + delta(cur.IOWait, s.prev.IOWait)
	total := du + ds + dh + dsi + dst + di
	s.prev = cur
	if total == 0 {
		return u, false, nil
	}
	f := 100 / total
	return Utilization{
		USR:   du * f,
		SYS:   ds * f,
		HIRQ:  dh * f,
		SIRQ:  dsi * f,
		STEAL: dst * f,
		Idle:  di * f,
	}, true, nil
}
