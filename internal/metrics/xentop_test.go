package metrics_test

import (
	"errors"
	"math"
	"testing"

	"adaptio/internal/metrics"
)

const xentopBatch = `xentop - 17:23:01   Xen 3.4.2
3 domains: 1 running, 2 blocked, 0 paused, 0 crashed, 0 dying, 0 shutdown
Mem: 33521852k total, 33324092k used, 197760k free    CPUs: 8 @ 2666MHz
      NAME  STATE   CPU(sec) CPU(%)     MEM(k) MEM(%)  MAXMEM(k) MAXMEM(%) VCPUS NETS NETTX(k) NETRX(k) VBDS   VBD_OO   VBD_RD   VBD_WR SSID
  Domain-0 -----r       8206    2.3    2093056    6.2   no limit       n/a     8    0        0        0    0        0        0        0    0
     domU1 --b---       1234   45.1    2097152    6.3    2097152       6.3     1    1    55123    18234    1        0     1200     3400    0
     domU2 --b---        777    0.4    2097152    6.3    2097152       6.3     1    1      100      200    1        0       10       20    0
`

func TestParseXentop(t *testing.T) {
	domains, err := metrics.ParseXentop(xentopBatch)
	if err != nil {
		t.Fatal(err)
	}
	if len(domains) != 3 {
		t.Fatalf("parsed %d domains, want 3", len(domains))
	}
	d0 := domains[0]
	if d0.Name != "Domain-0" || d0.CPUSecs != 8206 || d0.CPUPct != 2.3 || d0.VCPUs != 8 {
		t.Fatalf("Domain-0 parsed wrong: %+v", d0)
	}
	d1 := domains[1]
	if d1.Name != "domU1" || d1.CPUSecs != 1234 || d1.CPUPct != 45.1 {
		t.Fatalf("domU1 parsed wrong: %+v", d1)
	}
	if d1.NetTxKB != 55123 || d1.NetRxKB != 18234 {
		t.Fatalf("domU1 net counters wrong: %+v", d1)
	}
	if d1.MemKB != 2097152 || d1.State != "--b---" {
		t.Fatalf("domU1 mem/state wrong: %+v", d1)
	}
}

func TestParseXentopErrors(t *testing.T) {
	if _, err := metrics.ParseXentop("no header here\n"); err == nil {
		t.Error("headerless output accepted")
	}
	bad := "NAME STATE CPU(sec) CPU(%)\nfoo --b--- notanumber 1.0\n"
	if _, err := metrics.ParseXentop(bad); err == nil {
		t.Error("garbage CPU(sec) accepted")
	}
	// "n/a" placeholders must not error (Domain-0 MAXMEM(%) is n/a).
	ok := "NAME STATE CPU(sec) CPU(%)\nDomain-0 -----r 10 n/a\n"
	domains, err := metrics.ParseXentop(ok)
	if err != nil || len(domains) != 1 {
		t.Fatalf("n/a placeholder rejected: %v", err)
	}
}

func TestDomainCPU(t *testing.T) {
	before, err := metrics.ParseXentop("NAME STATE CPU(sec) CPU(%)\ndomU1 --b--- 100 0.0\n")
	if err != nil {
		t.Fatal(err)
	}
	after, err := metrics.ParseXentop("NAME STATE CPU(sec) CPU(%)\ndomU1 --b--- 145 0.0\n")
	if err != nil {
		t.Fatal(err)
	}
	pct, err := metrics.DomainCPU(before, after, "domU1", 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pct-45) > 1e-9 {
		t.Fatalf("DomainCPU = %v, want 45", pct)
	}
	if _, err := metrics.DomainCPU(before, after, "missing", 100); err == nil {
		t.Error("missing domain accepted")
	}
	if _, err := metrics.DomainCPU(after, before, "domU1", 100); err == nil {
		t.Error("backwards counter accepted")
	}
	if _, err := metrics.DomainCPU(before, after, "domU1", 0); err == nil {
		t.Error("zero interval accepted")
	}
}

func TestPidSampler(t *testing.T) {
	snapshots := []string{
		"4242 (qemu-kvm) S 1 1 1 0 -1 0 0 0 0 0 1000 500 0 0 20 0 5 0 1 1 1",
		"4242 (qemu-kvm) S 1 1 1 0 -1 0 0 0 0 0 1080 560 0 0 20 0 5 0 1 1 1",
	}
	i := 0
	src := metrics.FuncSource(func() (string, error) {
		s := snapshots[i]
		if i < len(snapshots)-1 {
			i++
		}
		return s, nil
	})
	s := metrics.NewPidSampler(src, 100)
	if _, _, ok, err := s.Sample(1); ok || err != nil {
		t.Fatalf("first sample should only prime: ok=%v err=%v", ok, err)
	}
	usr, sys, ok, err := s.Sample(1)
	if err != nil || !ok {
		t.Fatalf("sample failed: %v", err)
	}
	// +80 utime jiffies over 1 s at HZ=100 -> 80%; +60 stime -> 60%.
	if math.Abs(usr-80) > 1e-9 || math.Abs(sys-60) > 1e-9 {
		t.Fatalf("usr/sys = %v/%v, want 80/60", usr, sys)
	}
}

func TestPidSamplerErrors(t *testing.T) {
	src := metrics.FuncSource(func() (string, error) { return "", errors.New("gone") })
	s := metrics.NewPidSampler(src, 0)
	if _, _, _, err := s.Sample(1); err == nil {
		t.Error("source error swallowed")
	}
	good := metrics.FuncSource(func() (string, error) {
		return "1 (x) S 1 1 1 0 -1 0 0 0 0 0 10 10 0 0 20 0 1 0 1 1 1", nil
	})
	s2 := metrics.NewPidSampler(good, 100)
	s2.Sample(1)
	if _, _, _, err := s2.Sample(0); err == nil {
		t.Error("zero interval accepted")
	}
}
