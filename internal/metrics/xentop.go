package metrics

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// XentopDomain is one domain row of `xentop -b` batch output — the tool the
// paper used "to observe the CPU utilization that was accounted to the
// monitored domU from the perspective of the dom0" (Section II-A).
type XentopDomain struct {
	Name    string
	State   string
	CPUSecs uint64  // cumulative CPU seconds consumed by the domain
	CPUPct  float64 // utilization percentage as printed by xentop
	MemKB   uint64
	VCPUs   int
	NetTxKB uint64
	NetRxKB uint64
}

// ParseXentop parses `xentop -b` batch output (one iteration). The batch
// format is a header line starting with "NAME" followed by one row per
// domain:
//
//	NAME  STATE  CPU(sec) CPU(%) MEM(k) MEM(%) MAXMEM(k) MAXMEM(%) VCPUS NETS NETTX(k) NETRX(k) ...
func ParseXentop(text string) ([]XentopDomain, error) {
	var (
		domains []XentopDomain
		cols    map[string]int
	)
	for _, line := range strings.Split(text, "\n") {
		// Domain-0's MAXMEM prints as the two-word "no limit", which
		// would shift every following column; fold it into one token.
		line = strings.ReplaceAll(line, "no limit", "no-limit")
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if fields[0] == "NAME" {
			cols = map[string]int{}
			for i, f := range fields {
				cols[f] = i
			}
			continue
		}
		if cols == nil {
			continue // preamble before the header
		}
		get := func(name string) (string, bool) {
			idx, ok := cols[name]
			if !ok || idx >= len(fields) {
				return "", false
			}
			return fields[idx], true
		}
		d := XentopDomain{Name: fields[0]}
		if s, ok := get("STATE"); ok {
			d.State = s
		}
		parseU := func(name string, dst *uint64) error {
			s, ok := get(name)
			if !ok || s == "n/a" || s == "-" {
				return nil
			}
			v, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				return fmt.Errorf("metrics: xentop %s field %q: %v", name, s, err)
			}
			*dst = v
			return nil
		}
		if err := parseU("CPU(sec)", &d.CPUSecs); err != nil {
			return nil, err
		}
		if s, ok := get("CPU(%)"); ok && s != "n/a" && s != "-" {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("metrics: xentop CPU%% field %q: %v", s, err)
			}
			d.CPUPct = v
		}
		if err := parseU("MEM(k)", &d.MemKB); err != nil {
			return nil, err
		}
		if s, ok := get("VCPUS"); ok {
			if v, err := strconv.Atoi(s); err == nil {
				d.VCPUs = v
			}
		}
		if err := parseU("NETTX(k)", &d.NetTxKB); err != nil {
			return nil, err
		}
		if err := parseU("NETRX(k)", &d.NetRxKB); err != nil {
			return nil, err
		}
		domains = append(domains, d)
	}
	if cols == nil {
		return nil, errors.New("metrics: xentop output has no NAME header")
	}
	return domains, nil
}

// DomainCPU computes the CPU utilization of one domain between two xentop
// snapshots taken dt seconds apart, in percent of one physical core — the
// paper's host-side measurement for XEN experiments.
func DomainCPU(before, after []XentopDomain, name string, dtSeconds float64) (float64, error) {
	if dtSeconds <= 0 {
		return 0, fmt.Errorf("metrics: non-positive interval %v", dtSeconds)
	}
	b, err := findDomain(before, name)
	if err != nil {
		return 0, err
	}
	a, err := findDomain(after, name)
	if err != nil {
		return 0, err
	}
	if a.CPUSecs < b.CPUSecs {
		return 0, fmt.Errorf("metrics: domain %q CPU counter went backwards", name)
	}
	return float64(a.CPUSecs-b.CPUSecs) / dtSeconds * 100, nil
}

func findDomain(ds []XentopDomain, name string) (XentopDomain, error) {
	for _, d := range ds {
		if d.Name == name {
			return d, nil
		}
	}
	return XentopDomain{}, fmt.Errorf("metrics: domain %q not in xentop output", name)
}

// PidSampler computes a process's CPU utilization from successive
// /proc/<pid>/stat snapshots — the paper's methodology for measuring the
// qemu process from the KVM host ("we first determined the process ID of
// the corresponding qemu process, afterwards traced the CPU utilization for
// that process using the /proc/<process ID>/stat interface").
type PidSampler struct {
	src      Source
	hz       float64
	prev     PidCPU
	havePrev bool
}

// NewPidSampler creates a sampler over a /proc/<pid>/stat source. hz is the
// kernel's USER_HZ (jiffies per second); zero means the Linux default 100.
func NewPidSampler(src Source, hz float64) *PidSampler {
	if hz <= 0 {
		hz = 100
	}
	return &PidSampler{src: src, hz: hz}
}

// Sample reads the source and returns the process's user- and system-mode
// utilization (percent of one core) since the previous call, given the
// elapsed wall time. The first call primes the baseline and returns
// ok=false.
func (s *PidSampler) Sample(dtSeconds float64) (usrPct, sysPct float64, ok bool, err error) {
	text, err := s.src.ReadStat()
	if err != nil {
		return 0, 0, false, err
	}
	cur, err := ParsePidStat(text)
	if err != nil {
		return 0, 0, false, err
	}
	if !s.havePrev {
		s.prev = cur
		s.havePrev = true
		return 0, 0, false, nil
	}
	if dtSeconds <= 0 {
		return 0, 0, false, fmt.Errorf("metrics: non-positive interval %v", dtSeconds)
	}
	du := float64(cur.UTime-s.prev.UTime) / s.hz / dtSeconds * 100
	ds := float64(cur.STime-s.prev.STime) / s.hz / dtSeconds * 100
	if cur.UTime < s.prev.UTime || cur.STime < s.prev.STime {
		du, ds = 0, 0 // counter wrap or pid reuse: skip interval
	}
	s.prev = cur
	return du, ds, true, nil
}
