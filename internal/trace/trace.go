// Package trace records and renders the time series behind Figures 4–6 of
// the paper: per-decision-window CPU utilization, application throughput,
// network throughput and the selected compression level. Rendering is
// plain-text (sparkline rows plus a level timeline), which is what the
// benchmark harness prints in place of the paper's plots.
package trace

import (
	"fmt"
	"strings"
)

// Point is one decision window.
type Point struct {
	// Time is seconds since transfer start.
	Time float64
	// Level is the compression level active during the window.
	Level int
	// AppMBps and WireMBps are the application- and network-layer
	// throughputs in MB/s.
	AppMBps  float64
	WireMBps float64
	// CPUPct is the guest-displayed CPU utilization in percent.
	CPUPct float64
}

// Trace is an append-only series of points.
type Trace struct {
	points []Point
	levels int
}

// New creates a trace for a ladder with the given number of levels.
func New(levels int) *Trace {
	if levels < 1 {
		levels = 1
	}
	return &Trace{levels: levels}
}

// Add appends one point.
func (t *Trace) Add(p Point) { t.points = append(t.points, p) }

// Len returns the number of recorded points.
func (t *Trace) Len() int { return len(t.points) }

// Points returns the recorded series (not a copy; callers must not modify).
func (t *Trace) Points() []Point { return t.points }

// Duration returns the time of the last point.
func (t *Trace) Duration() float64 {
	if len(t.points) == 0 {
		return 0
	}
	return t.points[len(t.points)-1].Time
}

// LevelOccupancy returns the fraction of windows spent at each level.
func (t *Trace) LevelOccupancy() []float64 {
	occ := make([]float64, t.levels)
	if len(t.points) == 0 {
		return occ
	}
	for _, p := range t.points {
		if p.Level >= 0 && p.Level < t.levels {
			occ[p.Level]++
		}
	}
	for i := range occ {
		occ[i] /= float64(len(t.points))
	}
	return occ
}

// Switches returns the number of level changes in the series.
func (t *Trace) Switches() int {
	n := 0
	for i := 1; i < len(t.points); i++ {
		if t.points[i].Level != t.points[i-1].Level {
			n++
		}
	}
	return n
}

// SwitchesIn counts level changes within [from, to) seconds; Figure 4's
// backoff claim is that this count decays over consecutive intervals.
func (t *Trace) SwitchesIn(from, to float64) int {
	n := 0
	for i := 1; i < len(t.points); i++ {
		if t.points[i].Time >= from && t.points[i].Time < to &&
			t.points[i].Level != t.points[i-1].Level {
			n++
		}
	}
	return n
}

// sparkRunes are the eight block heights of a text sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline renders values into width buckets, scaling to the series max.
func sparkline(values []float64, width int) string {
	if len(values) == 0 || width < 1 {
		return ""
	}
	buckets := resample(values, width)
	max := 0.0
	for _, v := range buckets {
		if v > max {
			max = v
		}
	}
	var sb strings.Builder
	for _, v := range buckets {
		idx := 0
		if max > 0 {
			idx = int(v / max * float64(len(sparkRunes)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkRunes) {
			idx = len(sparkRunes) - 1
		}
		sb.WriteRune(sparkRunes[idx])
	}
	return sb.String()
}

// resample averages values into width buckets.
func resample(values []float64, width int) []float64 {
	if width > len(values) {
		width = len(values)
	}
	out := make([]float64, width)
	for b := range out {
		lo := b * len(values) / width
		hi := (b + 1) * len(values) / width
		if hi == lo {
			hi = lo + 1
		}
		sum := 0.0
		for _, v := range values[lo:hi] {
			sum += v
		}
		out[b] = sum / float64(hi-lo)
	}
	return out
}

// levelTimeline renders the level series as one row per level, matching the
// step plot at the bottom of Figures 4–6.
func (t *Trace) levelTimeline(names []string, width int) string {
	if len(t.points) == 0 {
		return ""
	}
	series := make([]float64, len(t.points))
	for i, p := range t.points {
		series[i] = float64(p.Level)
	}
	buckets := resample(series, width)
	var sb strings.Builder
	for lvl := t.levels - 1; lvl >= 0; lvl-- {
		name := fmt.Sprintf("L%d", lvl)
		if lvl < len(names) && names[lvl] != "" {
			name = names[lvl]
		}
		sb.WriteString(fmt.Sprintf("%-8s|", name))
		for _, v := range buckets {
			if int(v+0.5) == lvl {
				sb.WriteByte('#')
			} else {
				sb.WriteByte(' ')
			}
		}
		sb.WriteString("|\n")
	}
	return sb.String()
}

// Render produces the full text figure: throughput and CPU sparklines plus
// the level timeline and summary statistics.
func (t *Trace) Render(title string, levelNames []string, width int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s ===\n", title)
	if len(t.points) == 0 {
		sb.WriteString("(no samples)\n")
		return sb.String()
	}
	app := make([]float64, len(t.points))
	wire := make([]float64, len(t.points))
	cpu := make([]float64, len(t.points))
	maxApp, maxWire, maxCPU := 0.0, 0.0, 0.0
	for i, p := range t.points {
		app[i], wire[i], cpu[i] = p.AppMBps, p.WireMBps, p.CPUPct
		if p.AppMBps > maxApp {
			maxApp = p.AppMBps
		}
		if p.WireMBps > maxWire {
			maxWire = p.WireMBps
		}
		if p.CPUPct > maxCPU {
			maxCPU = p.CPUPct
		}
	}
	fmt.Fprintf(&sb, "app  MB/s |%s| peak %.0f\n", sparkline(app, width), maxApp)
	fmt.Fprintf(&sb, "wire MB/s |%s| peak %.0f\n", sparkline(wire, width), maxWire)
	fmt.Fprintf(&sb, "cpu  %%    |%s| peak %.0f\n", sparkline(cpu, width), maxCPU)
	sb.WriteString(t.levelTimeline(levelNames, width))
	occ := t.LevelOccupancy()
	fmt.Fprintf(&sb, "duration %.0f s, %d windows, %d level switches, occupancy",
		t.Duration(), t.Len(), t.Switches())
	for lvl, f := range occ {
		name := fmt.Sprintf("L%d", lvl)
		if lvl < len(levelNames) && levelNames[lvl] != "" {
			name = levelNames[lvl]
		}
		fmt.Fprintf(&sb, " %s=%.0f%%", name, f*100)
	}
	sb.WriteString("\n")
	return sb.String()
}
