package trace

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sync"
)

// This file is the record half of the scenario engine's record/replay loop:
// a load-generator run (cmd/acload) records how many application bytes it
// pushed per decision window, the file rides along as a workload artifact,
// and internal/scenario replays it through the cloud simulator as a demand
// curve — real traffic shapes driving simulated fleets.

// WindowedTraceVersion is the current trace file format version.
const WindowedTraceVersion = 1

// maxTraceWindows bounds a loaded trace (a year of 1-second windows) so a
// corrupt file cannot allocate unboundedly.
const maxTraceWindows = 32 << 20

// WindowRecord is one decision window of recorded load.
type WindowRecord struct {
	// AppBytes is the application-layer payload bytes completed in the
	// window.
	AppBytes int64 `json:"app_bytes"`
	// Cycles is the number of request cycles completed in the window.
	Cycles int64 `json:"cycles"`
}

// WindowedTrace is a recorded per-window load series.
type WindowedTrace struct {
	Version       int            `json:"version"`
	WindowSeconds float64        `json:"window_seconds"`
	Windows       []WindowRecord `json:"windows"`
}

// Validate checks the trace is structurally sound for replay.
func (t *WindowedTrace) Validate() error {
	if t == nil {
		return fmt.Errorf("trace: nil trace")
	}
	if t.Version != WindowedTraceVersion {
		return fmt.Errorf("trace: unsupported version %d (want %d)", t.Version, WindowedTraceVersion)
	}
	if math.IsNaN(t.WindowSeconds) || t.WindowSeconds <= 0 || t.WindowSeconds > 3600 {
		return fmt.Errorf("trace: window seconds %v out of (0, 3600]", t.WindowSeconds)
	}
	if len(t.Windows) == 0 {
		return fmt.Errorf("trace: no windows")
	}
	if len(t.Windows) > maxTraceWindows {
		return fmt.Errorf("trace: %d windows exceeds limit %d", len(t.Windows), maxTraceWindows)
	}
	for i, w := range t.Windows {
		if w.AppBytes < 0 || w.Cycles < 0 {
			return fmt.Errorf("trace: window %d has negative counts", i)
		}
	}
	return nil
}

// TotalAppBytes sums the trace's application bytes.
func (t *WindowedTrace) TotalAppBytes() int64 {
	var s int64
	for _, w := range t.Windows {
		s += w.AppBytes
	}
	return s
}

// Save writes the trace as indented JSON.
func (t *WindowedTrace) Save(path string) error {
	if err := t.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return fmt.Errorf("trace: marshal: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	return nil
}

// LoadWindowed reads and validates a recorded trace file.
func LoadWindowed(path string) (*WindowedTrace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	var t WindowedTrace
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("trace: %s: decode: %w", path, err)
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	return &t, nil
}

// Recorder accumulates completed work into fixed decision windows. It is
// clock-free: callers report their own elapsed time, so it records
// identically under wall clocks, virtual clocks and tests. Safe for
// concurrent use by many workers.
type Recorder struct {
	windowSeconds float64

	mu      sync.Mutex
	windows []WindowRecord
}

// NewRecorder creates a recorder with the given window length in seconds
// (values <= 0 mean 1 s).
func NewRecorder(windowSeconds float64) *Recorder {
	if !(windowSeconds > 0) || windowSeconds > 3600 {
		windowSeconds = 1
	}
	return &Recorder{windowSeconds: windowSeconds}
}

// Record attributes one completed cycle of appBytes payload to the window
// containing elapsedSeconds. Out-of-range values are dropped rather than
// panicking (a worker may report a final cycle after the run's nominal end).
func (r *Recorder) Record(elapsedSeconds float64, appBytes int64) {
	if r == nil || math.IsNaN(elapsedSeconds) || elapsedSeconds < 0 || appBytes < 0 {
		return
	}
	w := int(elapsedSeconds / r.windowSeconds)
	if w < 0 || w >= maxTraceWindows {
		return
	}
	r.mu.Lock()
	for len(r.windows) <= w {
		r.windows = append(r.windows, WindowRecord{})
	}
	r.windows[w].AppBytes += appBytes
	r.windows[w].Cycles++
	r.mu.Unlock()
}

// Snapshot returns the recorded trace so far (a copy).
func (r *Recorder) Snapshot() *WindowedTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := &WindowedTrace{
		Version:       WindowedTraceVersion,
		WindowSeconds: r.windowSeconds,
		Windows:       append([]WindowRecord(nil), r.windows...),
	}
	return out
}
