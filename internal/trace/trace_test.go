package trace_test

import (
	"strings"
	"testing"

	"adaptio/internal/trace"
)

func buildTrace(levels int, points []trace.Point) *trace.Trace {
	tr := trace.New(levels)
	for _, p := range points {
		tr.Add(p)
	}
	return tr
}

func TestEmptyTrace(t *testing.T) {
	tr := trace.New(4)
	if tr.Len() != 0 || tr.Duration() != 0 || tr.Switches() != 0 {
		t.Fatal("empty trace has non-zero stats")
	}
	out := tr.Render("empty", nil, 40)
	if !strings.Contains(out, "no samples") {
		t.Fatalf("empty render: %q", out)
	}
	occ := tr.LevelOccupancy()
	if len(occ) != 4 {
		t.Fatalf("occupancy slots = %d", len(occ))
	}
}

func TestLevelOccupancyAndSwitches(t *testing.T) {
	tr := buildTrace(3, []trace.Point{
		{Time: 1, Level: 0},
		{Time: 2, Level: 1},
		{Time: 3, Level: 1},
		{Time: 4, Level: 2},
	})
	occ := tr.LevelOccupancy()
	if occ[0] != 0.25 || occ[1] != 0.5 || occ[2] != 0.25 {
		t.Fatalf("occupancy = %v", occ)
	}
	if tr.Switches() != 2 {
		t.Fatalf("switches = %d", tr.Switches())
	}
	if tr.Duration() != 4 {
		t.Fatalf("duration = %v", tr.Duration())
	}
}

func TestSwitchesIn(t *testing.T) {
	tr := buildTrace(2, []trace.Point{
		{Time: 1, Level: 0},
		{Time: 2, Level: 1}, // switch at t=2
		{Time: 10, Level: 1},
		{Time: 11, Level: 0}, // switch at t=11
	})
	if got := tr.SwitchesIn(0, 5); got != 1 {
		t.Fatalf("SwitchesIn(0,5) = %d", got)
	}
	if got := tr.SwitchesIn(5, 20); got != 1 {
		t.Fatalf("SwitchesIn(5,20) = %d", got)
	}
	if got := tr.SwitchesIn(3, 5); got != 0 {
		t.Fatalf("SwitchesIn(3,5) = %d", got)
	}
}

func TestRenderContainsAllParts(t *testing.T) {
	var points []trace.Point
	for i := 0; i < 100; i++ {
		lvl := 0
		if i%10 < 5 {
			lvl = 1
		}
		points = append(points, trace.Point{
			Time:     float64(i) * 2,
			Level:    lvl,
			AppMBps:  100 + float64(i),
			WireMBps: 50,
			CPUPct:   80,
		})
	}
	tr := buildTrace(4, points)
	out := tr.Render("Figure X", []string{"NO", "LIGHT", "MEDIUM", "HEAVY"}, 60)
	for _, want := range []string{"Figure X", "app  MB/s", "wire MB/s", "cpu  %", "NO", "LIGHT", "MEDIUM", "HEAVY", "level switches", "occupancy"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// The level timeline rows must all have the same width.
	var widths []int
	for _, line := range strings.Split(out, "\n") {
		if strings.HasSuffix(line, "|") && strings.Contains(line, "|") && !strings.Contains(line, "MB/s") && !strings.Contains(line, "cpu") {
			widths = append(widths, len(line))
		}
	}
	for i := 1; i < len(widths); i++ {
		if widths[i] != widths[0] {
			t.Fatalf("timeline rows have inconsistent widths: %v", widths)
		}
	}
}

func TestRenderShortSeries(t *testing.T) {
	tr := buildTrace(2, []trace.Point{{Time: 1, Level: 0, AppMBps: 10}})
	out := tr.Render("tiny", nil, 80)
	if out == "" || !strings.Contains(out, "tiny") {
		t.Fatal("short series render broken")
	}
}

func TestNewClampsLevels(t *testing.T) {
	tr := trace.New(0)
	tr.Add(trace.Point{Level: 0})
	if len(tr.LevelOccupancy()) != 1 {
		t.Fatal("levels<1 not clamped")
	}
}

func TestOutOfRangeLevelIgnoredInOccupancy(t *testing.T) {
	tr := buildTrace(2, []trace.Point{{Level: 7}, {Level: 1}})
	occ := tr.LevelOccupancy()
	if occ[1] != 0.5 {
		t.Fatalf("occupancy = %v", occ)
	}
}
