package trace

import (
	"math"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

func TestRecorderWindows(t *testing.T) {
	r := NewRecorder(1)
	r.Record(0.1, 100)
	r.Record(0.9, 50)
	r.Record(2.6, 30)

	// Invalid reports are dropped, never panic.
	r.Record(-1, 10)
	r.Record(math.NaN(), 10)
	r.Record(0.5, -10)
	r.Record(1e12, 10) // beyond the window cap

	got := r.Snapshot()
	want := []WindowRecord{
		{AppBytes: 150, Cycles: 2},
		{},
		{AppBytes: 30, Cycles: 1},
	}
	if got.Version != WindowedTraceVersion || got.WindowSeconds != 1 {
		t.Fatalf("snapshot header = %+v", got)
	}
	if !reflect.DeepEqual(got.Windows, want) {
		t.Fatalf("windows = %+v, want %+v", got.Windows, want)
	}

	// Snapshot is a copy: later records must not mutate it.
	r.Record(0.2, 1)
	if got.Windows[0].AppBytes != 150 {
		t.Fatal("snapshot aliased the recorder's live buffer")
	}
}

func TestRecorderDefaultsAndConcurrency(t *testing.T) {
	if r := NewRecorder(-3); r.Snapshot().WindowSeconds != 1 {
		t.Fatal("non-positive window seconds should clamp to 1")
	}
	var nilRec *Recorder
	nilRec.Record(1, 1) // must not panic

	r := NewRecorder(0.5)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Record(float64(j%10)*0.3, 7)
			}
		}()
	}
	wg.Wait()
	wt := r.Snapshot()
	if total := wt.TotalAppBytes(); total != 8*1000*7 {
		t.Fatalf("concurrent records lost bytes: total %d, want %d", total, 8*1000*7)
	}
}

func TestWindowedTraceSaveLoadRoundTrip(t *testing.T) {
	r := NewRecorder(2)
	r.Record(0.5, 1000)
	r.Record(3.9, 500)
	wt := r.Snapshot()

	path := filepath.Join(t.TempDir(), "trace.json")
	if err := wt.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadWindowed(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, wt) {
		t.Fatalf("round trip changed the trace: %+v vs %+v", back, wt)
	}
}

func TestWindowedTraceValidate(t *testing.T) {
	ok := &WindowedTrace{Version: WindowedTraceVersion, WindowSeconds: 2, Windows: []WindowRecord{{AppBytes: 1, Cycles: 1}}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	cases := []struct {
		name string
		wt   *WindowedTrace
	}{
		{"nil", nil},
		{"bad version", &WindowedTrace{Version: 0, WindowSeconds: 2, Windows: ok.Windows}},
		{"zero window seconds", &WindowedTrace{Version: WindowedTraceVersion, WindowSeconds: 0, Windows: ok.Windows}},
		{"NaN window seconds", &WindowedTrace{Version: WindowedTraceVersion, WindowSeconds: math.NaN(), Windows: ok.Windows}},
		{"huge window seconds", &WindowedTrace{Version: WindowedTraceVersion, WindowSeconds: 4000, Windows: ok.Windows}},
		{"empty", &WindowedTrace{Version: WindowedTraceVersion, WindowSeconds: 2}},
		{"negative counts", &WindowedTrace{Version: WindowedTraceVersion, WindowSeconds: 2, Windows: []WindowRecord{{AppBytes: -1}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.wt.Validate(); err == nil {
				t.Fatalf("Validate accepted %+v", tc.wt)
			}
		})
	}
	if err := (&WindowedTrace{Version: 0, WindowSeconds: 2, Windows: ok.Windows}).Save(filepath.Join(t.TempDir(), "x.json")); err == nil {
		t.Fatal("Save wrote an invalid trace")
	}
}
