package vclock_test

import (
	"sync"
	"testing"
	"time"

	"adaptio/internal/vclock"
)

func TestRealClockAdvances(t *testing.T) {
	c := vclock.Real{}
	a := c.Now()
	time.Sleep(2 * time.Millisecond)
	if !c.Now().After(a) {
		t.Fatal("real clock did not advance")
	}
}

func TestManualClock(t *testing.T) {
	m := vclock.NewManual()
	start := m.Now()
	m.Advance(3 * time.Second)
	if got := m.Now().Sub(start); got != 3*time.Second {
		t.Fatalf("advance moved %v", got)
	}
	m.Set(start.Add(time.Minute))
	if got := m.Now().Sub(start); got != time.Minute {
		t.Fatalf("set moved to %v", got)
	}
}

func TestManualClockPanicsOnBackwards(t *testing.T) {
	m := vclock.NewManual()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative Advance did not panic")
			}
		}()
		m.Advance(-time.Second)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("backwards Set did not panic")
			}
		}()
		m.Set(m.Now().Add(-time.Second))
	}()
}

func TestManualClockConcurrency(t *testing.T) {
	m := vclock.NewManual()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Advance(time.Microsecond)
				_ = m.Now()
			}
		}()
	}
	wg.Wait()
	want := vclock.NewManual().Now().Add(8 * 1000 * time.Microsecond)
	if !m.Now().Equal(want) {
		t.Fatalf("concurrent advances lost: %v vs %v", m.Now(), want)
	}
}
