// Package vclock abstracts time so the adaptive stream layer can run under
// the real wall clock in production and under a manually advanced clock in
// tests, keeping the time-window logic deterministic and fast to test.
package vclock

import (
	"sync"
	"time"
)

// Clock supplies the current time.
type Clock interface {
	Now() time.Time
}

// Real is the wall clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Manual is a test clock that only moves when Advance or Set is called.
// The zero value starts at the zero time; NewManual starts at a fixed,
// readable epoch. Manual is safe for concurrent use.
type Manual struct {
	mu  sync.Mutex
	now time.Time
}

// NewManual returns a Manual clock starting at 2011-05-16 00:00:00 UTC (the
// first day of IPDPS 2011, a fixed epoch that makes test output readable).
func NewManual() *Manual {
	return &Manual{now: time.Date(2011, 5, 16, 0, 0, 0, 0, time.UTC)}
}

// Now implements Clock.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Advance moves the clock forward by d. Negative d panics: time in the
// simulator never flows backwards.
func (m *Manual) Advance(d time.Duration) {
	if d < 0 {
		panic("vclock: negative advance")
	}
	m.mu.Lock()
	m.now = m.now.Add(d)
	m.mu.Unlock()
}

// Set jumps the clock to t. Jumping backwards panics.
func (m *Manual) Set(t time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if t.Before(m.now) {
		panic("vclock: set backwards")
	}
	m.now = t
}
