// Package adaptio is the public API of this repository: adaptive online
// compression for streams whose I/O bandwidth is shared and unpredictable,
// as in IaaS clouds.
//
// It implements the system of "Evaluating Adaptive Compression to Mitigate
// the Effects of Shared I/O in Clouds" (Hovestadt, Kao, Kliem, Warneke —
// IEEE IPDPS 2011): a compression module that sits between the application
// and the I/O layer, cuts the outgoing stream into self-contained 128 KB
// blocks, and every t seconds picks a compression level from an ordered
// ladder (NO / LIGHT / MEDIUM / HEAVY) using only the observed application
// data rate — no OS metrics, no training phase. Decisions follow the
// paper's Algorithm 1: optimistic neighbour probes under exponential
// backoff, immediate revert on rate degradation.
//
// # Quick start
//
//	w, err := adaptio.NewWriter(conn, adaptio.WriterConfig{})
//	if err != nil { ... }
//	io.Copy(w, data) // application writes, levels adapt every 2 s
//	w.Close()
//
//	r, err := adaptio.NewReader(conn)    // receiving side
//	io.Copy(dst, r)                      // codec switches are transparent
//
// The receiver needs no configuration: every block header carries its codec,
// so the compression level can change mid-stream without coordination.
//
// # Structure
//
// The implementation lives in internal packages, re-exported here:
//
//   - internal/core — the rate-based decision model (Algorithm 1)
//   - internal/stream — block framing, adaptive Writer/Reader
//   - internal/compress — codec ladder: from-scratch LZ77 (lzfast, the
//     QuickLZ stand-in), LZ77+range-coder (lzheavy, the LZMA stand-in),
//     and a stdlib flate adapter
//   - internal/nephele — a miniature Nephele dataflow engine whose network
//     and file channels compress transparently
//   - internal/cloudsim, internal/experiments — the simulation substrate
//     and harness that regenerate the paper's evaluation (see DESIGN.md
//     and EXPERIMENTS.md)
//
// Corrupt or hostile input never panics or over-allocates: framing errors
// fail fast wrapping stream.ErrBadFrame, and the tunnel exposes retry,
// idle-timeout and graceful-shutdown knobs. The fault model and hardening
// guarantees are documented in docs/robustness.md and exercised by the
// internal/faultio chaos suite.
package adaptio

import (
	"io"

	"adaptio/internal/compress"
	"adaptio/internal/core"
	"adaptio/internal/stream"
)

// Writer is the adaptive compression writer; see stream.Writer.
type Writer = stream.Writer

// Reader is the decompressing reader; see stream.Reader.
type Reader = stream.Reader

// WriterConfig configures a Writer. The zero value is the paper's
// configuration: four-level default ladder, t = 2 s, α = 0.2, 128 KB
// blocks, adaptive level selection.
type WriterConfig = stream.WriterConfig

// WindowStat describes one completed decision window.
type WindowStat = stream.WindowStat

// Stats aggregates writer activity.
type Stats = stream.Stats

// Codec is the block-codec interface; custom codecs can be registered with
// RegisterCodec and used in custom ladders.
type Codec = compress.Codec

// Ladder is an ordered set of compression levels.
type Ladder = compress.Ladder

// Level is one entry of a Ladder.
type Level = compress.Level

// DeciderConfig configures a standalone Decider.
type DeciderConfig = core.Config

// Decider is the pluggable level-selection policy interface; AlgorithmOne is
// the paper's Algorithm 1 implementation, for callers who want the decision
// model without the stream layer. NewPolicy constructs learned alternatives
// by name.
type Decider = core.Decider

// AlgorithmOne is the paper-faithful Algorithm 1 policy.
type AlgorithmOne = core.AlgorithmOne

// PolicyConfig configures a policy built by NewPolicy.
type PolicyConfig = core.PolicyConfig

// Paper defaults.
const (
	// DefaultAlpha is the rate tolerance band α = 0.2.
	DefaultAlpha = core.DefaultAlpha
	// DefaultBlockSize is the 128 KB block size.
	DefaultBlockSize = stream.DefaultBlockSize
)

// Ladder level indices of DefaultLadder, matching the paper's names.
const (
	LevelNo     = stream.LevelNo
	LevelLight  = stream.LevelLight
	LevelMedium = stream.LevelMedium
	LevelHeavy  = stream.LevelHeavy
)

// Adaptive marks WriterConfig.StaticLevel as "decided at runtime".
const Adaptive = stream.Adaptive

// NewWriter creates an adaptive compression writer in front of dst.
func NewWriter(dst io.Writer, cfg WriterConfig) (*Writer, error) {
	return stream.NewWriter(dst, cfg)
}

// NewReader creates a decompressing reader over src.
func NewReader(src io.Reader) (*Reader, error) {
	return stream.NewReader(src)
}

// ParallelReader decompresses on a worker pool; see stream.ParallelReader.
type ParallelReader = stream.ParallelReader

// NewParallelReader creates a decompressing reader whose frames are decoded
// on a worker pool while the bytes are delivered strictly in order — the
// receive-side counterpart of WriterConfig.Parallelism. Close it when
// abandoning the stream before EOF.
func NewParallelReader(src io.Reader, workers int) (*ParallelReader, error) {
	return stream.NewParallelReader(src, workers)
}

// NewDecider creates a standalone paper-faithful decision model.
func NewDecider(cfg DeciderConfig) (*AlgorithmOne, error) {
	return core.NewDecider(cfg)
}

// NewPolicy constructs a level-selection policy by registry name: "algone"
// (or empty) for the paper's Algorithm 1, "bandit" for the contextual-bandit
// probe gate, "ewma" for the trend-predictive variant. See docs/deciders.md.
func NewPolicy(name string, cfg PolicyConfig) (Decider, error) {
	return core.NewPolicy(name, cfg)
}

// DefaultLadder returns the paper's four-level ladder: NO, LIGHT (fast
// LZ77), MEDIUM (LZ77 with deeper match search) and HEAVY (LZ77 + range
// coder).
func DefaultLadder() Ladder { return stream.DefaultLadder() }

// ExtendedLadder returns a six-level ladder that reuses algorithms at
// multiple parameter settings (two lzfast-hc depths, DEFLATE, the range
// coder) — the paper's "same compression algorithm at multiple levels but
// with different parameters" remark, ready to use.
func ExtendedLadder() Ladder { return stream.ExtendedLadder() }

// RegisterCodec makes a custom codec resolvable on the receive path. Codec
// IDs are wire identifiers; duplicate registrations panic.
func RegisterCodec(c Codec) { compress.Register(c) }
