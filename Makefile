# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-race test-short test-shape test-obs test-coord test-scenario test-decider test-kernels bench bench-alloc bench-compare bench-throughput bench-throughput-compare bench-relay-gate bench-decider-gate alloc-gate repro claims soak fuzz fuzz-smoke fuzz-nightly chaos cover clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

test-short:
	$(GO) test -short ./...

# Shape-fidelity regression suite: the paper's qualitative claims encoded as
# deterministic seeded assertions, including the revert-disabled sentinel.
test-shape:
	$(GO) test -run 'TestShape' -count=1 -v ./internal/experiments/

# The observability layer's gates: unit semantics, race hammer with exact
# counts, zero-allocation hot path, and the snapshot/render golden files.
test-obs:
	$(GO) test -race -count=1 ./internal/obs/
	$(GO) test -run 'TestHotPathAllocationFree' -count=1 ./internal/obs/
	$(GO) test -run 'Golden|TestStatsDerivedFromMetrics' -count=1 ./internal/obs/ ./internal/nephele/
	$(GO) test -run 'TestDecisionLogShowsBackoffAfterRevert|TestWriterObsCounters' -count=1 ./internal/stream/

# Fleet-coordinator gates: the contention-regression suite (coordinated vs
# solo on a shared simulated NIC, cheat sentinel included), the solo
# convergence property suite it falls back to, and the tunnel wiring tests
# — all under the race detector (docs/coordination.md).
test-coord:
	$(GO) test -race -count=1 ./internal/coord/
	$(GO) test -race -run 'TestDecider' -count=1 ./internal/core/
	$(GO) test -race -run 'TestCoord|TestQueuedConn' -count=1 ./internal/tunnel/
	$(GO) test -race -run 'TestRunFleet|TestWaterFill' -count=1 ./internal/cloudsim/

# Scenario DSL regression surface (docs/scenarios.md): parser strictness and
# fuzz seeds, artifact-determinism goldens, the trace record/replay round
# trip, the flapping-NIC dwell suite, and the built-in claim/rig shape
# matrix — the rigs must break exactly the claims they target.
test-scenario:
	$(GO) test -race -count=1 ./internal/scenario/ ./internal/trace/
	$(GO) test -race -run 'TestFlap' -count=1 ./internal/coord/
	$(GO) test -run 'TestScenario' -count=1 -v ./internal/experiments/
	$(GO) run ./cmd/expdriver -scenario flaps -max-wall 2m

# Decider policy gates (docs/deciders.md): the core policy suites under
# -race (golden AlgorithmOne trace, all-policy convergence + determinism),
# the per-policy Table II matrix with its two-axis bound and CheatStick
# sentinel, the six-builtin scenario bound, and a 32-stream end-to-end
# smoke driving the lossy builtin through expdriver with -decider bandit.
test-decider:
	$(GO) test -race -count=1 ./internal/core/
	$(GO) test -run 'TestDeciderMatrix|TestCheatStickFailsMatrixBound' -count=1 -v ./internal/experiments/
	$(GO) test -run 'TestBuiltinsDeciderBound|TestCheatStickFailsScenarioBound|TestScenarioDeciderField' -short -count=1 ./internal/scenario/
	$(GO) run ./cmd/expdriver -scenario lossy -decider bandit -max-wall 2m

# Kernel-tier gates (docs/performance.md, "Kernel tier"): the unsafe-vs-spec
# compress differential suites and golden digests, the serial-vs-parallel
# wire-determinism property, and the probe skip/ledger suite — first under
# the race detector on the default (unsafe) build, then again with the
# portable kernels forced via -tags purego. Both builds must produce
# byte-identical compressed output.
test-kernels:
	$(GO) test -race -run 'Differential|TestGoldenDigests' -count=1 ./internal/compress/lzfast/
	$(GO) test -race -run 'TestWireDeterminism|TestProbe' -count=1 ./internal/stream/
	$(GO) test -tags purego -run 'Differential|TestGoldenDigests' -count=1 ./internal/compress/lzfast/
	$(GO) test -tags purego -run 'TestWireDeterminism|TestProbe' -count=1 ./internal/stream/

# One iteration of every paper table/figure benchmark with rendered output.
bench:
	$(GO) test -bench . -benchmem -benchtime=1x -v .

# Data-plane allocation benchmarks (docs/performance.md). Compare against
# the committed baseline in BENCH_alloc.json.
bench-alloc:
	$(GO) test -run '^$$' -bench '^BenchmarkAlloc' -benchmem -benchtime=300x ./internal/...

# Perf-regression gate: rerun the allocation benchmarks and fail if any
# B/op or allocs/op figure regressed >15% against the committed baseline.
# Self-contained (cmd/benchdiff); no benchstat install needed.
bench-compare:
	$(GO) test -run '^$$' -bench '^BenchmarkAlloc' -benchmem -benchtime=300x ./internal/... | tee bench_output.txt
	$(GO) run ./cmd/benchdiff -baseline BENCH_alloc.json bench_output.txt

# Data-plane throughput benchmarks (docs/performance.md): codec MB/s per
# corpus kind, stream writer/reader end to end, tunnel relay. Compare
# against the committed baseline in BENCH_throughput.json.
bench-throughput:
	$(GO) test -run '^$$' -bench '^BenchmarkThroughput' -benchtime=1s .

# Throughput-regression gate: rerun the throughput benchmarks and fail if
# any MB/s figure collapsed below the committed baseline's wide tolerance
# (-mode throughput defaults to -regress 0.40; MB/s baselines are
# machine-dependent, so the gate catches lost fast paths, not CPU drift).
bench-throughput-compare:
	$(GO) test -run '^$$' -bench '^BenchmarkThroughput' -benchtime=1s . | tee bench_throughput_output.txt
	$(GO) run ./cmd/benchdiff -mode throughput -baseline BENCH_throughput.json bench_throughput_output.txt

# Zero-copy relay gate (docs/performance.md, "Zero-copy relay"): just the
# relay benchmarks (NO-level and unframed passthrough) against their
# BENCH_throughput.json floors. -allow-missing: this run skips the rest of
# the throughput suite.
bench-relay-gate:
	$(GO) test -run '^$$' -bench '^BenchmarkThroughputRelay' -benchtime=1s -count=2 . | tee bench_relay_output.txt
	$(GO) run ./cmd/benchdiff -mode throughput -baseline BENCH_throughput.json -allow-missing bench_relay_output.txt

# Decider-regression gate (docs/deciders.md): regenerate the deterministic
# per-policy matrix artifact and fail if any policy's wasted-probe count
# grew >15% or a cell's converged MB/s fell >15% against the committed
# BENCH_decider.json baseline.
bench-decider-gate:
	$(GO) run ./cmd/expdriver -decider-matrix -json-out bench_decider_output.json
	$(GO) run ./cmd/benchdiff -mode decider -baseline BENCH_decider.json bench_decider_output.json

# The AllocsPerRun regression gates (serial round trip, presized decodes).
alloc-gate:
	$(GO) test -run 'AllocGate|Presized|ReleasesAllBuffers' -count=1 -v \
		./internal/stream/ ./internal/compress/lzfast/ ./internal/compress/lzheavy/

# Full reproduction at the paper's 50 GB volume.
repro:
	$(GO) run ./cmd/expdriver

# PASS/FAIL checklist of the paper's quantitative claims.
claims:
	$(GO) run ./cmd/expdriver -claims

# Connection-scale soak (docs/scaling.md): bounded pool under heavy churn,
# leak-checked drain. The nightly workflow runs a longer variant.
soak:
	$(GO) run ./cmd/acload -conns 256 -dur 15s -max-conns 128 -accept-queue 128 -q

fuzz:
	$(GO) test -fuzz=FuzzFastRoundTrip -fuzztime=30s ./internal/compress/lzfast/
	$(GO) test -fuzz=FuzzDecompressFast -fuzztime=30s ./internal/compress/lzfast/
	$(GO) test -fuzz=FuzzCompressFastUnsafe -fuzztime=30s ./internal/compress/lzfast/
	$(GO) test -fuzz=FuzzRoundTrip -fuzztime=30s ./internal/compress/lzheavy/
	$(GO) test -fuzz=FuzzWriterChunking -fuzztime=30s ./internal/stream/
	$(GO) test -fuzz=FuzzReaderCorruptStream -fuzztime=30s ./internal/stream/
	$(GO) test -fuzz=FuzzTunnelFrame -fuzztime=30s ./internal/tunnel/
	$(GO) test -fuzz=FuzzScenarioParse -fuzztime=30s ./internal/scenario/

# Short fuzz sessions of the corrupt-input and kernel-differential targets;
# what CI runs.
fuzz-smoke:
	$(GO) test -fuzz=FuzzCompressFastUnsafe -fuzztime=10s ./internal/compress/lzfast/
	$(GO) test -fuzz=FuzzReaderCorruptStream -fuzztime=10s ./internal/stream/
	$(GO) test -fuzz=FuzzTunnelFrame -fuzztime=10s ./internal/tunnel/
	$(GO) test -fuzz=FuzzScenarioParse -fuzztime=10s ./internal/scenario/

# Extended fuzz sessions of every target; what the nightly workflow runs.
fuzz-nightly:
	$(GO) test -fuzz=FuzzFastRoundTrip -fuzztime=5m ./internal/compress/lzfast/
	$(GO) test -fuzz=FuzzDecompressFast -fuzztime=5m ./internal/compress/lzfast/
	$(GO) test -fuzz=FuzzCompressFastUnsafe -fuzztime=5m ./internal/compress/lzfast/
	$(GO) test -fuzz=FuzzRoundTrip -fuzztime=5m ./internal/compress/lzheavy/
	$(GO) test -fuzz=FuzzWriterChunking -fuzztime=5m ./internal/stream/
	$(GO) test -fuzz=FuzzReaderCorruptStream -fuzztime=5m ./internal/stream/
	$(GO) test -fuzz=FuzzTunnelFrame -fuzztime=5m ./internal/tunnel/
	$(GO) test -fuzz=FuzzScenarioParse -fuzztime=5m ./internal/scenario/

# The seeded fault-injection scenarios (docs/robustness.md) under -race.
chaos:
	$(GO) test -race -run 'TestChaos' -count=1 ./internal/faultio/

cover:
	$(GO) test -coverprofile=cover.out ./internal/...
	$(GO) tool cover -func=cover.out | tail -1

clean:
	rm -f cover.out test_output.txt bench_output.txt bench_throughput_output.txt bench_decider_output.json
