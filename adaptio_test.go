package adaptio_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"log"
	"testing"
	"time"

	"adaptio"
	"adaptio/internal/corpus"
	"adaptio/internal/vclock"
)

// TestPublicRoundTrip exercises the full public API surface the README
// advertises.
func TestPublicRoundTrip(t *testing.T) {
	data := corpus.Generate(corpus.Moderate, 600<<10, 1)
	var wire bytes.Buffer
	w, err := adaptio.NewWriter(&wire, adaptio.WriterConfig{Clock: vclock.NewManual()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := adaptio.NewReader(&wire)
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("public API round trip mismatch")
	}
}

func TestPublicStaticLevels(t *testing.T) {
	data := corpus.Generate(corpus.High, 256<<10, 1)
	for _, lvl := range []int{adaptio.LevelNo, adaptio.LevelLight, adaptio.LevelMedium, adaptio.LevelHeavy} {
		var wire bytes.Buffer
		w, err := adaptio.NewWriter(&wire, adaptio.WriterConfig{Static: true, StaticLevel: lvl})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := adaptio.NewReader(&wire)
		if err != nil {
			t.Fatal(err)
		}
		out, err := io.ReadAll(r)
		if err != nil || !bytes.Equal(out, data) {
			t.Fatalf("level %d round trip failed: %v", lvl, err)
		}
	}
}

func TestPublicParallelPaths(t *testing.T) {
	data := corpus.Generate(corpus.High, 1<<20, 2)
	var wire bytes.Buffer
	w, err := adaptio.NewWriter(&wire, adaptio.WriterConfig{Parallelism: 4, Clock: vclock.NewManual()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := adaptio.NewParallelReader(&wire, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil || !bytes.Equal(out, data) {
		t.Fatalf("parallel facade round trip failed: %v", err)
	}
}

func TestPublicDecider(t *testing.T) {
	d, err := adaptio.NewDecider(adaptio.DeciderConfig{Levels: 4})
	if err != nil {
		t.Fatal(err)
	}
	lvl := d.Observe(100)
	if lvl < 0 || lvl > 3 {
		t.Fatalf("level %d out of range", lvl)
	}
}

func TestPublicLadder(t *testing.T) {
	l := adaptio.DefaultLadder()
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(l) != 4 {
		t.Fatalf("default ladder has %d levels", len(l))
	}
	if adaptio.DefaultAlpha != 0.2 {
		t.Fatalf("DefaultAlpha = %v", adaptio.DefaultAlpha)
	}
	if adaptio.DefaultBlockSize != 128<<10 {
		t.Fatalf("DefaultBlockSize = %v", adaptio.DefaultBlockSize)
	}
}

// customCodec exercises RegisterCodec: an XOR "cipher" codec, registered
// under a private ID, usable in a custom ladder and decodable by the
// standard Reader.
type customCodec struct{}

func (customCodec) ID() uint8    { return 200 }
func (customCodec) Name() string { return "xor" }

func (customCodec) Compress(dst, src []byte) []byte {
	for _, b := range src {
		dst = append(dst, b^0x5A)
	}
	return dst
}

func (customCodec) Decompress(dst, src []byte, size int) ([]byte, error) {
	if len(src) != size {
		return dst, errors.New("xor: size mismatch")
	}
	for _, b := range src {
		dst = append(dst, b^0x5A)
	}
	return dst, nil
}

func TestCustomCodecRegistration(t *testing.T) {
	adaptio.RegisterCodec(customCodec{})
	ladder := adaptio.Ladder{
		{Name: "NO", Codec: adaptio.DefaultLadder()[0].Codec},
		{Name: "XOR", Codec: customCodec{}},
	}
	var wire bytes.Buffer
	w, err := adaptio.NewWriter(&wire, adaptio.WriterConfig{
		Ladder: ladder, Static: true, StaticLevel: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("custom codec payload")
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := adaptio.NewReader(&wire)
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(r)
	if err != nil || !bytes.Equal(out, data) {
		t.Fatalf("custom codec round trip failed: %v", err)
	}
}

// ExampleNewWriter demonstrates the minimal adaptive round trip.
func ExampleNewWriter() {
	var wire bytes.Buffer
	w, err := adaptio.NewWriter(&wire, adaptio.WriterConfig{Window: time.Second})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := io.WriteString(w, "data streams into the cloud"); err != nil {
		log.Fatal(err)
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	r, err := adaptio.NewReader(&wire)
	if err != nil {
		log.Fatal(err)
	}
	out, err := io.ReadAll(r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(out))
	// Output: data streams into the cloud
}
