// Throughput benchmark suite: the MB/s counterpart of the allocation
// benchmarks in internal/*/bench_alloc_test.go. The paper trades compression
// speed against I/O bandwidth (Algorithm 1 selects a level by observed data
// rate), so the codecs and the frame path ARE the hot path of this system;
// this file freezes their throughput into a regression baseline.
//
// Every benchmark sets b.SetBytes with the raw (uncompressed) byte count, so
// `go test -bench '^BenchmarkThroughput'` reports application-level MB/s.
// The committed baseline lives in BENCH_throughput.json; compare with
// `make bench-throughput-compare` (cmd/benchdiff -mode throughput).
package adaptio_test

import (
	"bytes"
	"context"
	"io"
	"net"
	"testing"

	"adaptio/internal/compress"
	"adaptio/internal/compress/lzfast"
	"adaptio/internal/compress/lzheavy"
	"adaptio/internal/corpus"
	"adaptio/internal/stream"
	"adaptio/internal/tunnel"
)

// throughputBlock is the per-op unit for the codec benchmarks: one default
// stream block.
const throughputBlock = 128 << 10

// benchCorpus returns the named benchmark input. "mixed" splices equal
// thirds of the three paper corpora into one block, so a decode pass crosses
// fax runs, prose, and entropy data (and therefore both the wild-copy fast
// path and the careful tail path) within a single op.
func benchCorpus(name string, n int) []byte {
	switch name {
	case "high":
		return corpus.Generate(corpus.High, n, 1)
	case "moderate":
		return corpus.Generate(corpus.Moderate, n, 1)
	case "low":
		return corpus.Generate(corpus.Low, n, 1)
	case "mixed":
		third := n / 3
		out := make([]byte, 0, n)
		out = append(out, corpus.Generate(corpus.High, third, 1)...)
		out = append(out, corpus.Generate(corpus.Moderate, third, 1)...)
		out = append(out, corpus.Generate(corpus.Low, n-2*third, 1)...)
		return out
	default:
		panic("unknown bench corpus " + name)
	}
}

var throughputCodecs = []struct {
	name  string
	codec compress.Codec
}{
	{"lzfast", lzfast.Fast{}},
	{"lzfast-hc", lzfast.HC{}},
	{"lzheavy", lzheavy.Codec{}},
}

var throughputKinds = []string{"high", "moderate", "low", "mixed"}

func BenchmarkThroughputCompress(b *testing.B) {
	for _, tc := range throughputCodecs {
		for _, kind := range throughputKinds {
			b.Run(tc.name+"/"+kind, func(b *testing.B) {
				src := benchCorpus(kind, throughputBlock)
				dst := make([]byte, 0, 2*len(src))
				b.SetBytes(int64(len(src)))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					dst = tc.codec.Compress(dst[:0], src)
				}
				b.ReportMetric(float64(len(dst))/float64(len(src)), "ratio")
			})
		}
	}
}

func BenchmarkThroughputDecompress(b *testing.B) {
	for _, tc := range throughputCodecs {
		for _, kind := range throughputKinds {
			b.Run(tc.name+"/"+kind, func(b *testing.B) {
				src := benchCorpus(kind, throughputBlock)
				comp := tc.codec.Compress(nil, src)
				dst := make([]byte, 0, len(src))
				b.SetBytes(int64(len(src)))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					out, err := tc.codec.Decompress(dst[:0], comp, len(src))
					if err != nil {
						b.Fatal(err)
					}
					dst = out[:0]
				}
			})
		}
	}
}

// streamVolume is the per-op byte volume of the stream/tunnel benchmarks:
// 32 default blocks, enough that per-frame costs dominate setup.
const streamVolume = 32 * throughputBlock

// buildWire encodes streamVolume bytes of moderate corpus at the given
// static level and returns (application bytes, wire bytes).
func buildWire(b *testing.B, level int) (app, wire []byte) {
	b.Helper()
	app = benchCorpus("moderate", streamVolume)
	var buf bytes.Buffer
	w, err := stream.NewWriter(&buf, stream.WriterConfig{Static: true, StaticLevel: level})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := w.Write(app); err != nil {
		b.Fatal(err)
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	return app, buf.Bytes()
}

var throughputLevels = []struct {
	name  string
	level int
}{
	{"no", stream.LevelNo},
	{"light", stream.LevelLight},
	{"medium", stream.LevelMedium},
}

// BenchmarkThroughputStreamWriter measures the serial Writer end to end:
// application bytes in, frames to an in-memory sink.
func BenchmarkThroughputStreamWriter(b *testing.B) {
	for _, lv := range throughputLevels {
		b.Run(lv.name, func(b *testing.B) {
			app := benchCorpus("moderate", streamVolume)
			w, err := stream.NewWriter(io.Discard, stream.WriterConfig{Static: true, StaticLevel: lv.level})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			b.SetBytes(int64(len(app)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := w.Write(app); err != nil {
					b.Fatal(err)
				}
				if err := w.Flush(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkThroughputStreamWriterParallel is the pipeline variant
// (Parallelism=4) of the light-level writer benchmark.
func BenchmarkThroughputStreamWriterParallel(b *testing.B) {
	app := benchCorpus("moderate", streamVolume)
	w, err := stream.NewWriter(io.Discard, stream.WriterConfig{
		Static: true, StaticLevel: stream.LevelLight, Parallelism: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	b.SetBytes(int64(len(app)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Write(app); err != nil {
			b.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkThroughputParallelWriter measures the public ParallelWriter —
// per-block parallel compression within a single stream — at 4 workers
// across the writer levels. Its wire output is byte-identical to the serial
// Writer at every level (pinned by TestWireDeterminismSerialVsParallel);
// only the scheduling differs, so this row isolates the pipeline's
// fan-out/recombine overhead from the codec cost.
func BenchmarkThroughputParallelWriter(b *testing.B) {
	for _, lv := range throughputLevels {
		b.Run(lv.name, func(b *testing.B) {
			app := benchCorpus("moderate", streamVolume)
			w, err := stream.NewParallelWriter(io.Discard, stream.WriterConfig{
				Static: true, StaticLevel: lv.level,
			}, 4)
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			b.SetBytes(int64(len(app)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := w.Write(app); err != nil {
					b.Fatal(err)
				}
				if err := w.Flush(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkThroughputStreamReader measures the serial Reader end to end:
// wire frames in, application bytes to io.Discard (via the Reader's
// WriteTo, the relay path).
func BenchmarkThroughputStreamReader(b *testing.B) {
	for _, lv := range throughputLevels {
		b.Run(lv.name, func(b *testing.B) {
			app, wire := buildWire(b, lv.level)
			b.SetBytes(int64(len(app)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := stream.NewReader(bytes.NewReader(wire))
				if err != nil {
					b.Fatal(err)
				}
				n, err := io.Copy(io.Discard, r)
				if err != nil {
					b.Fatal(err)
				}
				if n != int64(len(app)) {
					b.Fatalf("decoded %d bytes, want %d", n, len(app))
				}
			}
		})
	}
}

// BenchmarkThroughputStreamParallelReader is the 4-worker ParallelReader
// variant of the light-level reader benchmark.
func BenchmarkThroughputStreamParallelReader(b *testing.B) {
	app, wire := buildWire(b, stream.LevelLight)
	b.SetBytes(int64(len(app)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := stream.NewParallelReader(bytes.NewReader(wire), 4)
		if err != nil {
			b.Fatal(err)
		}
		n, err := io.Copy(io.Discard, r)
		if err != nil {
			b.Fatal(err)
		}
		if n != int64(len(app)) {
			b.Fatalf("decoded %d bytes, want %d", n, len(app))
		}
		r.Close()
	}
}

// benchTunnelRelay drives the full tunnel data plane over a real loopback:
// per op one connection writes 8 blocks through entry→exit to an echo server
// and reads them back, so every payload byte crosses both relays twice.
// SetBytes counts both directions.
func benchTunnelRelay(b *testing.B, cfg tunnel.Config) {
	b.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				io.Copy(c, c)
			}(c)
		}
	}()

	exit, err := tunnel.ListenExit(ctx, "127.0.0.1:0", ln.Addr().String(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer exit.Close()
	entry, err := tunnel.ListenEntry(ctx, "127.0.0.1:0", exit.Addr().String(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer entry.Close()

	payload := benchCorpus("moderate", 8*throughputBlock)
	echo := make([]byte, len(payload))
	b.SetBytes(int64(2 * len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn, err := net.Dial("tcp", entry.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		done := make(chan error, 1)
		go func() {
			_, err := io.ReadFull(conn, echo)
			done <- err
		}()
		if _, err := conn.Write(payload); err != nil {
			b.Fatal(err)
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		if err := <-done; err != nil {
			b.Fatal(err)
		}
		conn.Close()
	}
}

// BenchmarkThroughputTunnelRelay is the historical gate benchmark: a LIGHT
// static tunnel pair, so every byte runs the codec both ways.
func BenchmarkThroughputTunnelRelay(b *testing.B) {
	benchTunnelRelay(b, tunnel.Config{Static: true, StaticLevel: stream.LevelLight})
}

// BenchmarkThroughputRelayNoLevel pins the framed zero-copy path: NO level
// means stored-raw vectored frames out of ReadDirect on the compress side
// and CRC-verified direct delivery on the decompress side — framing overhead
// without a single user-space buffer-to-buffer copy.
func BenchmarkThroughputRelayNoLevel(b *testing.B) {
	benchTunnelRelay(b, tunnel.Config{Static: true, StaticLevel: stream.LevelNo})
}

// BenchmarkThroughputRelayPassthrough pins the unframed path: both endpoints
// agree on Config.Passthrough, so on Linux the bytes move entirely in the
// kernel via splice(2) (portable pooled-buffer loop elsewhere).
func BenchmarkThroughputRelayPassthrough(b *testing.B) {
	benchTunnelRelay(b, tunnel.Config{Passthrough: true})
}
