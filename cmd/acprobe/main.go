// Command acprobe is the metric-accuracy probe of Section II. In -live mode
// it runs the paper's measurement loop against the real /proc/stat of this
// machine: 1 s delta sampling of the CPU counters, reporting the
// USR/SYS/HIRQ/SIRQ/STEAL split — the exact data a guest-side adaptive
// compression scheme would base its decisions on. With -load it also runs
// one of the paper's auxiliary I/O load generators while sampling, which is
// the full Figure 1 methodology: run acprobe inside a VM and compare its
// output with the same probe on the host. Without -live it prints the
// simulated Figure 1-3 reproduction (same output as expdriver -fig1 -fig2
// -fig3).
//
// Usage:
//
//	acprobe -live [-n samples] [-interval 1s] [-load netsend|netrecv|filewrite|fileread]
//	acprobe [-gb N] [-seed N] [-json-out probe.json]
//
// -json-out (simulation mode only) additionally writes the Figure 2/3
// throughput distributions as MB/s in the BENCH_throughput.json schema
// (internal/benchfmt), so nightly artifacts are diffable against the
// committed baseline.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"adaptio/internal/benchfmt"
	"adaptio/internal/experiments"
	"adaptio/internal/ioload"
	"adaptio/internal/metrics"
)

func main() {
	var (
		live     = flag.Bool("live", false, "sample the real /proc/stat of this machine")
		liveFig1 = flag.Bool("live-fig1", false, "run the full Figure 1 methodology live: all four I/O loads, sampled breakdown each")
		n        = flag.Int("n", 10, "number of live samples")
		interval = flag.Duration("interval", time.Second, "live sampling interval")
		load     = flag.String("load", "", "run an I/O load generator while sampling: netsend, netrecv, filewrite or fileread")
		gb       = flag.Float64("gb", 50, "simulated data volume in GB")
		seed     = flag.Uint64("seed", 2011, "simulation seed")
		jsonOut  = flag.String("json-out", "", "also write Fig2/Fig3 distributions as a benchfmt JSON artifact to this path")
	)
	flag.Parse()

	if *liveFig1 {
		if err := runLiveFig1(*n, *interval); err != nil {
			fmt.Fprintf(os.Stderr, "acprobe: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *live {
		ctx, cancel := context.WithCancel(context.Background())
		if *load != "" {
			stop, err := startLoad(ctx, *load)
			if err != nil {
				fmt.Fprintf(os.Stderr, "acprobe: %v\n", err)
				os.Exit(1)
			}
			defer stop()
		}
		err := runLive(*n, *interval)
		cancel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "acprobe: %v\n", err)
			os.Exit(1)
		}
		return
	}

	rows, err := experiments.Fig1CPUAccuracy(120, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "acprobe: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(experiments.RenderFig1(rows))
	vol := int64(*gb * 1e9)
	net, err := experiments.Fig2NetThroughput(vol, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "acprobe: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(experiments.RenderDist("Figure 2: network I/O throughput in the sending VM", "MBit/s", net))
	file, err := experiments.Fig3FileWriteThroughput(vol, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "acprobe: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(experiments.RenderDist("Figure 3: file I/O throughput (write) in the VM", "MB/s", file))
	if *jsonOut == "" {
		return
	}
	art := &benchfmt.File{
		Description: "acprobe Figure 2/3 simulated throughput distributions, mean MB/s per platform",
		Go:          runtime.Version(),
	}
	for _, r := range net {
		// Figure 2 samples are MBit/s; the artifact schema is MB/s.
		art.Add("Fig2NetThroughput/"+r.Platform.String(), "current", benchfmt.Measurement{MBPerS: r.Summary.Mean / 8})
	}
	for _, r := range file {
		art.Add("Fig3FileWrite/"+r.Platform.String(), "current", benchfmt.Measurement{MBPerS: r.Summary.Mean})
	}
	if err := benchfmt.WriteFile(*jsonOut, art); err != nil {
		fmt.Fprintf(os.Stderr, "acprobe: %v\n", err)
		os.Exit(1)
	}
}

// startLoad launches one of the paper's auxiliary load generators in the
// background and returns a cleanup function. Network loads run against a
// loopback sink/source; file loads use a temporary file.
func startLoad(ctx context.Context, kind string) (func(), error) {
	tmp := filepath.Join(os.TempDir(), "acprobe-load.bin")
	switch kind {
	case "netsend":
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		go ioload.Sink(ctx, ln)
		go ioload.NetSend(ctx, ln.Addr().String(), 0)
		return func() { ln.Close() }, nil
	case "netrecv":
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		go func() {
			// Saturating source feeding the receiver under test.
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				return
			}
			defer conn.Close()
			buf := make([]byte, 1<<20)
			for ctx.Err() == nil {
				if _, err := conn.Write(buf); err != nil {
					return
				}
			}
		}()
		go ioload.NetReceive(ctx, ln, 0)
		return func() { ln.Close() }, nil
	case "filewrite":
		go func() {
			for ctx.Err() == nil {
				ioload.FileWrite(ctx, tmp, 1<<30)
			}
		}()
		return func() { os.Remove(tmp) }, nil
	case "fileread":
		if _, err := ioload.FileWrite(ctx, tmp, 1<<30); err != nil {
			return nil, err
		}
		go func() {
			for ctx.Err() == nil {
				ioload.FileRead(ctx, tmp, 0)
			}
		}()
		return func() { os.Remove(tmp) }, nil
	default:
		return nil, fmt.Errorf("unknown load %q", kind)
	}
}

// runLiveFig1 reproduces the Figure 1 measurement on this machine: for each
// of the four I/O operations it runs the saturating load generator while
// delta-sampling /proc/stat, then prints the averaged breakdown. Running
// this inside a VM and on its host side by side IS the paper's experiment.
func runLiveFig1(n int, interval time.Duration) error {
	for _, kind := range []string{"netsend", "netrecv", "filewrite", "fileread"} {
		fmt.Printf("--- live Figure 1: %s ---\n", kind)
		ctx, cancel := context.WithCancel(context.Background())
		stop, err := startLoad(ctx, kind)
		if err != nil {
			cancel()
			return err
		}
		time.Sleep(interval) // let the load ramp up
		err = runLive(n, interval)
		cancel()
		stop()
		if err != nil {
			return err
		}
		fmt.Println()
	}
	fmt.Println("run the same probe on the host (or an unvirtualized peer) and compare totals;")
	fmt.Println("a large host-vs-guest gap is the paper's Section II-A effect.")
	return nil
}

func runLive(n int, interval time.Duration) error {
	sampler := metrics.NewSampler(metrics.FileSource("/proc/stat"))
	fmt.Printf("%-8s %6s %6s %6s %6s %6s %6s\n", "sample", "USR", "SYS", "HIRQ", "SIRQ", "STEAL", "idle")
	var agg metrics.Utilization
	got := 0
	for got < n {
		u, ok, err := sampler.Sample()
		if err != nil {
			return err
		}
		if ok {
			got++
			fmt.Printf("%-8d %6.1f %6.1f %6.1f %6.1f %6.1f %6.1f\n",
				got, u.USR, u.SYS, u.HIRQ, u.SIRQ, u.STEAL, u.Idle)
			agg.USR += u.USR
			agg.SYS += u.SYS
			agg.HIRQ += u.HIRQ
			agg.SIRQ += u.SIRQ
			agg.STEAL += u.STEAL
			agg.Idle += u.Idle
		}
		time.Sleep(interval)
	}
	f := 1 / float64(n)
	fmt.Printf("%-8s %6.1f %6.1f %6.1f %6.1f %6.1f %6.1f\n",
		"mean", agg.USR*f, agg.SYS*f, agg.HIRQ*f, agg.SIRQ*f, agg.STEAL*f, agg.Idle*f)
	if agg.STEAL > 0 {
		fmt.Println("note: nonzero STEAL time - this machine is itself virtualized.")
	}
	return nil
}
