// Command benchdiff is the perf-regression gate: it parses `go test -bench`
// output and compares every benchmark against a committed baseline, failing
// (exit 1) on regressions beyond a tolerance. It has two modes:
//
//   - `-mode alloc` (default) gates B/op and allocs/op against
//     BENCH_alloc.json, as produced by `make bench-alloc`;
//   - `-mode throughput` gates MB/s (and ns/op for benchmarks without a
//     MB/s column) against BENCH_throughput.json, as produced by
//     `make bench-throughput`;
//   - `-mode decider` gates the decider policy matrix — wasted-probe counts
//     and converged MB/s per Table II cell — against BENCH_decider.json.
//     The input here is not `go test -bench` text but the benchfmt JSON
//     artifact of `expdriver -decider-matrix -json-out`, which is
//     deterministic in its seed; `make bench-decider-gate` runs the pair.
//
// It exists because CI must not depend on tools outside the repository:
// benchstat needs an install step, benchdiff is `go run ./cmd/benchdiff`.
//
//	make bench-alloc | tee bench.txt
//	go run ./cmd/benchdiff -baseline BENCH_alloc.json bench.txt
//
// or, as one target: `make bench-compare` / `make bench-throughput-compare`.
// Reading from stdin works too.
//
// The alloc pass rule, per metric (bytes and allocs independently):
//
//	new <= base*(1+regress) + slack
//
// The multiplicative term is the headline tolerance (default 15%, per
// docs/performance.md). The additive slack exists for near-zero baselines:
// a 0 B/op baseline would otherwise fail on any nonzero reading, and
// sync.Pool warm-up noise under -benchtime=300x is worth a few hundred
// bytes. Defaults: 512 B and 1 alloc. Baselines large enough to matter
// are unaffected by the slack.
//
// The throughput pass rule, per metric the baseline carries (MB/s and
// ns/op gated independently, so a benchmark regressing both reports both):
//
//	new MB/s  >= base MB/s  * (1-regress)
//	new ns/op <= base ns/op * (1+regress)
//
// with a deliberately wider default tolerance (40%): wall-clock throughput
// varies with the host CPU in a way allocation counts do not, so this gate
// catches step-function regressions (a lost fast path, an accidental copy),
// not single-digit drift — docs/performance.md discusses the calibration.
//
// The decider pass rule, per baseline entry (both axes gated so a policy
// cannot buy probe economy with throughput or vice versa):
//
//	new wasted probes <= base*(1+regress) + slack   (default 15% + 2)
//	new MB/s          >= base MB/s * (1-regress)
//
// at the alloc-style 15% default tolerance: the matrix is simulated and
// seed-deterministic, so drift there is a behaviour change, not host noise.
//
// A baseline entry may carry a "regress" field overriding the global
// tolerance for that one benchmark (tighter for stable workloads, looser
// for known-noisy ones); see docs/performance.md for the calibrated rows.
//
// When the same benchmark appears several times (multiple -count runs), the
// best reading is kept — minimum for B/op, allocs/op and ns/op, maximum for
// MB/s: the gate measures the floor the code can reach, not scheduler
// noise. Baseline benchmarks missing from the input fail the gate (a
// silently skipped benchmark is a rotten gate) unless -allow-missing is
// set; new benchmarks absent from the baseline are reported but never fail.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// measurement is one benchmark's metrics. The json tags are shared with
// internal/benchfmt, which is the schema of the committed baselines and of
// the -json-out artifacts of cmd/realbench and cmd/acprobe.
type measurement struct {
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`

	// decider-mode metrics (benchfmt JSON artifacts only; bench text
	// output never carries them).
	Probes       int64 `json:"probes,omitempty"`
	WastedProbes int64 `json:"wasted_probes,omitempty"`

	// Regress, when set on a baseline entry (> 0), overrides the global
	// -regress tolerance for that one benchmark — the seam for pinning a
	// benchmark tighter than the mode default (e.g. a throughput row whose
	// workload is stable enough for a 25% bound under the 40% default),
	// or looser for a known-noisy one. Parsed inputs never carry it.
	Regress float64 `json:"regress,omitempty"`

	// which column families the parsed input line actually carried
	// (baseline entries don't need these: absent fields decode to zero).
	hasMem   bool
	hasSpeed bool
}

// baselineFile mirrors BENCH_alloc.json / BENCH_throughput.json. Each
// benchmark's entry maps set names to measurements but may also carry
// string fields ("note"), so the sets stay raw until the requested one is
// picked out.
type baselineFile struct {
	Description string                                `json:"description"`
	Benchmarks  map[string]map[string]json.RawMessage `json:"benchmarks"`
}

// gate modes.
const (
	modeAlloc      = "alloc"
	modeThroughput = "throughput"
	modeDecider    = "decider"
)

// options holds the gate mode and tolerances.
type options struct {
	mode         string
	regress      float64 // multiplicative tolerance, e.g. 0.15
	slackBytes   int64   // additive slack for B/op
	slackAllocs  int64   // additive slack for allocs/op
	slackProbes  int64   // additive slack for wasted probes
	allowMissing bool
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")
	var (
		mode         = flag.String("mode", modeAlloc, "gate mode: alloc (B/op, allocs/op), throughput (MB/s, ns/op), or decider (wasted probes, MB/s from a benchfmt JSON artifact)")
		baselinePath = flag.String("baseline", "BENCH_alloc.json", "committed baseline file")
		set          = flag.String("set", "current", "which baseline set to compare against")
		regress      = flag.Float64("regress", -1, "tolerated regression fraction (default: 0.40 for throughput, 0.15 otherwise)")
		slackBytes   = flag.Int64("slack-bytes", 512, "additive B/op slack (protects near-zero baselines from noise)")
		slackAllocs  = flag.Int64("slack-allocs", 1, "additive allocs/op slack")
		slackProbes  = flag.Int64("slack-probes", 2, "additive wasted-probe slack for -mode decider (protects near-zero baselines)")
		allowMissing = flag.Bool("allow-missing", false, "do not fail when a baseline benchmark is absent from the input")
	)
	flag.Parse()
	if *mode != modeAlloc && *mode != modeThroughput && *mode != modeDecider {
		log.Fatalf("unknown -mode %q (want %q, %q or %q)", *mode, modeAlloc, modeThroughput, modeDecider)
	}
	if *regress < 0 {
		if *mode == modeThroughput {
			*regress = 0.40
		} else {
			*regress = 0.15
		}
	}

	var in io.Reader = os.Stdin
	src := "stdin"
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
		src = flag.Arg(0)
	}

	base, err := loadBaseline(*baselinePath, *set)
	if err != nil {
		log.Fatal(err)
	}
	var results map[string]measurement
	if *mode == modeDecider {
		results, err = parseArtifact(in, *set)
	} else {
		results, err = parseBench(in)
	}
	if err != nil {
		log.Fatal(err)
	}
	if len(results) == 0 {
		log.Fatalf("no benchmark result lines found in %s", src)
	}

	opts := options{mode: *mode, regress: *regress, slackBytes: *slackBytes, slackAllocs: *slackAllocs, slackProbes: *slackProbes, allowMissing: *allowMissing}
	rows, failed := compare(base, results, opts)
	fmt.Print(renderRows(rows, *set, opts))
	if failed {
		bad := failingNames(rows)
		log.Fatalf("FAIL: %d benchmark(s) beyond %.0f%% against %s %q: %s",
			len(bad), *regress*100, *baselinePath, *set, strings.Join(bad, ", "))
	}
	fmt.Printf("benchdiff: PASS (%d benchmarks within %.0f%% of %q)\n", len(rows), *regress*100, *set)
}

// loadBaseline reads the named measurement set out of the baseline file.
func loadBaseline(path, set string) (map[string]measurement, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf baselineFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]measurement, len(bf.Benchmarks))
	for name, sets := range bf.Benchmarks {
		raw, ok := sets[set]
		if !ok {
			return nil, fmt.Errorf("%s: benchmark %q has no set %q", path, name, set)
		}
		var m measurement
		if err := json.Unmarshal(raw, &m); err != nil {
			return nil, fmt.Errorf("%s: benchmark %q set %q: %w", path, name, set, err)
		}
		out[name] = m
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in baseline", path)
	}
	return out, nil
}

// parseArtifact extracts {name -> measurement} from a benchfmt JSON
// artifact (the decider mode's input: `expdriver -decider-matrix -json-out`
// output). Entries under the named set are taken verbatim — the artifact is
// deterministic, so there is no best-of-N folding to do.
func parseArtifact(r io.Reader, set string) (map[string]measurement, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var bf baselineFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("decider artifact: %w", err)
	}
	out := make(map[string]measurement, len(bf.Benchmarks))
	for name, sets := range bf.Benchmarks {
		raw, ok := sets[set]
		if !ok {
			return nil, fmt.Errorf("decider artifact: benchmark %q has no set %q", name, set)
		}
		var m measurement
		if err := json.Unmarshal(raw, &m); err != nil {
			return nil, fmt.Errorf("decider artifact: benchmark %q: %w", name, err)
		}
		out[name] = m
	}
	return out, nil
}

// benchLine matches `go test -bench` result lines, e.g.
//
//	BenchmarkAllocWriterSteady-8   300   5067 ns/op   25882.51 MB/s   0 B/op   0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.+)$`)

// parseBench extracts {name -> measurement} from benchmark output. When a
// benchmark repeats, the best reading of each metric is kept: min for
// B/op, allocs/op and ns/op; max for MB/s.
func parseBench(r io.Reader) (map[string]measurement, error) {
	out := map[string]measurement{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name, rest := m[1], strings.Fields(m[2])
		var cur measurement
		memCols := 0
		for i := 1; i < len(rest); i++ {
			v, err := strconv.ParseFloat(rest[i-1], 64)
			if err != nil {
				continue
			}
			switch rest[i] {
			case "B/op":
				cur.BytesPerOp = int64(v)
				memCols++
			case "allocs/op":
				cur.AllocsPerOp = int64(v)
				memCols++
			case "ns/op":
				cur.NsPerOp = v
				cur.hasSpeed = true
			case "MB/s":
				cur.MBPerS = v
				cur.hasSpeed = true
			}
		}
		cur.hasMem = memCols == 2
		if !cur.hasMem && !cur.hasSpeed {
			continue // no recognized metric columns on this line
		}
		if prev, ok := out[name]; ok {
			cur.BytesPerOp = min(cur.BytesPerOp, prev.BytesPerOp)
			cur.AllocsPerOp = min(cur.AllocsPerOp, prev.AllocsPerOp)
			cur.NsPerOp = minF(cur.NsPerOp, prev.NsPerOp)
			cur.MBPerS = max(cur.MBPerS, prev.MBPerS)
			cur.hasMem = cur.hasMem || prev.hasMem
			cur.hasSpeed = cur.hasSpeed || prev.hasSpeed
		}
		out[name] = cur
	}
	return out, sc.Err()
}

// minF is min for float64 treating 0 as "unset" (a parsed ns/op is never 0).
func minF(a, b float64) float64 {
	if a == 0 {
		return b
	}
	if b == 0 || a < b {
		return a
	}
	return b
}

// verdicts a row can carry.
const (
	verdictOK      = "ok"
	verdictFail    = "FAIL"
	verdictMissing = "MISSING"
	verdictNew     = "new"
)

// row is one benchmark's comparison outcome.
type row struct {
	name    string
	base    measurement
	got     measurement
	verdict string
	reasons []string
}

// exceeds reports whether got regresses past base under the gate rule
// `got <= base*(1+regress) + slack`.
func exceeds(got, base int64, regress float64, slack int64) bool {
	limit := int64(float64(base)*(1+regress)+0.5) + slack
	return got > limit
}

// belowFloor reports whether got falls below the throughput gate floor
// `base*(1-regress)`.
func belowFloor(got, base, regress float64) bool {
	return got < base*(1-regress)
}

// compare evaluates every baseline benchmark against the parsed results
// and reports whether the gate failed.
func compare(base, results map[string]measurement, opts options) ([]row, bool) {
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	rows := make([]row, 0, len(names))
	for _, name := range names {
		b := base[name]
		got, ok := results[name]
		if ok && opts.mode == modeAlloc && !got.hasMem {
			ok = false // line had no -benchmem columns: nothing to gate
		}
		if ok && opts.mode == modeThroughput && !got.hasSpeed {
			ok = false
		}
		if !ok {
			r := row{name: name, base: b, verdict: verdictMissing}
			if !opts.allowMissing {
				failed = true
				r.reasons = append(r.reasons, "benchmark missing from input")
			}
			rows = append(rows, r)
			continue
		}
		r := row{name: name, base: b, got: got, verdict: verdictOK}
		// A baseline entry may pin its own tolerance (measurement.Regress);
		// otherwise the mode-wide -regress applies.
		regress := opts.regress
		if b.Regress > 0 {
			regress = b.Regress
		}
		switch opts.mode {
		case modeDecider:
			// Both axes of the decider bound gate independently, mirroring
			// the acceptance tests: probe economy must not regress past the
			// tolerance, and the cells that carry throughput must hold it.
			if exceeds(got.WastedProbes, b.WastedProbes, regress, opts.slackProbes) {
				r.reasons = append(r.reasons, fmt.Sprintf("wasted probes %d > %d+%.0f%%+%d",
					got.WastedProbes, b.WastedProbes, regress*100, opts.slackProbes))
			}
			if b.MBPerS > 0 && belowFloor(got.MBPerS, b.MBPerS, regress) {
				r.reasons = append(r.reasons, fmt.Sprintf("MB/s %.1f < %.1f-%.0f%%", got.MBPerS, b.MBPerS, regress*100))
			}
		case modeThroughput:
			// Every speed metric the baseline carries is gated on its own:
			// the historical else-if here meant a benchmark with both
			// columns never had its ns/op checked, and a run regressing
			// several benchmarks surfaced only part of the damage.
			if b.MBPerS > 0 && belowFloor(got.MBPerS, b.MBPerS, regress) {
				r.reasons = append(r.reasons, fmt.Sprintf("MB/s %.1f < %.1f-%.0f%%", got.MBPerS, b.MBPerS, regress*100))
			}
			if b.NsPerOp > 0 && got.NsPerOp > b.NsPerOp*(1+regress) {
				r.reasons = append(r.reasons, fmt.Sprintf("ns/op %.0f > %.0f+%.0f%%", got.NsPerOp, b.NsPerOp, regress*100))
			}
		default: // alloc
			if exceeds(got.BytesPerOp, b.BytesPerOp, regress, opts.slackBytes) {
				r.reasons = append(r.reasons, fmt.Sprintf("B/op %d > %d+%.0f%%+%d", got.BytesPerOp, b.BytesPerOp, regress*100, opts.slackBytes))
			}
			if exceeds(got.AllocsPerOp, b.AllocsPerOp, regress, opts.slackAllocs) {
				r.reasons = append(r.reasons, fmt.Sprintf("allocs/op %d > %d+%.0f%%+%d", got.AllocsPerOp, b.AllocsPerOp, regress*100, opts.slackAllocs))
			}
		}
		if len(r.reasons) > 0 {
			r.verdict = verdictFail
			failed = true
		}
		rows = append(rows, r)
	}

	// Benchmarks present in the run but absent from the baseline:
	// informational only — they need a baseline entry, not a verdict.
	extra := make([]string, 0)
	for name := range results {
		if _, ok := base[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		rows = append(rows, row{name: name, got: results[name], verdict: verdictNew})
	}
	return rows, failed
}

// failingNames collects every benchmark that contributed to a failed gate:
// FAIL verdicts and (unless -allow-missing) MISSING ones, in table order.
// The final summary line enumerates them all so a multi-benchmark
// regression is diagnosable from the last line of CI output alone.
func failingNames(rows []row) []string {
	var bad []string
	for _, r := range rows {
		if len(r.reasons) > 0 {
			bad = append(bad, r.name)
		}
	}
	return bad
}

// renderRows formats the comparison as an aligned table.
func renderRows(rows []row, set string, opts options) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "baseline set %q, mode %s, tolerance %.0f%%\n", set, opts.mode, opts.regress*100)
	switch opts.mode {
	case modeThroughput:
		fmt.Fprintf(&sb, "%-44s %12s %12s %14s %14s  %s\n",
			"benchmark", "base MB/s", "got MB/s", "base ns/op", "got ns/op", "verdict")
	case modeDecider:
		fmt.Fprintf(&sb, "%-44s %12s %12s %14s %14s  %s\n",
			"benchmark", "base wasted", "got wasted", "base MB/s", "got MB/s", "verdict")
	default:
		fmt.Fprintf(&sb, "%-44s %12s %12s %14s %14s  %s\n",
			"benchmark", "base B/op", "got B/op", "base allocs", "got allocs", "verdict")
	}
	for _, r := range rows {
		var bb, gb, ba, ga string
		switch opts.mode {
		case modeThroughput:
			bb, ba = fmtF(r.base.MBPerS, 2), fmtF(r.base.NsPerOp, 0)
			gb, ga = fmtF(r.got.MBPerS, 2), fmtF(r.got.NsPerOp, 0)
		case modeDecider:
			bb, ba = strconv.FormatInt(r.base.WastedProbes, 10), fmtF(r.base.MBPerS, 2)
			gb, ga = strconv.FormatInt(r.got.WastedProbes, 10), fmtF(r.got.MBPerS, 2)
		default:
			bb, ba = strconv.FormatInt(r.base.BytesPerOp, 10), strconv.FormatInt(r.base.AllocsPerOp, 10)
			gb, ga = strconv.FormatInt(r.got.BytesPerOp, 10), strconv.FormatInt(r.got.AllocsPerOp, 10)
		}
		if r.verdict == verdictMissing {
			gb, ga = "-", "-"
		}
		if r.verdict == verdictNew {
			bb, ba = "-", "-"
		}
		note := r.verdict
		if len(r.reasons) > 0 {
			note += " (" + strings.Join(r.reasons, "; ") + ")"
		}
		fmt.Fprintf(&sb, "%-44s %12s %12s %14s %14s  %s\n", r.name, bb, gb, ba, ga, note)
	}
	return sb.String()
}

// fmtF renders a float metric, "-" when unset (zero).
func fmtF(v float64, prec int) string {
	if v == 0 {
		return "-"
	}
	return strconv.FormatFloat(v, 'f', prec, 64)
}
