// Command benchdiff is the allocation perf-regression gate: it parses
// `go test -bench -benchmem` output and compares every benchmark's B/op
// and allocs/op against the committed baseline in BENCH_alloc.json,
// failing (exit 1) when either regresses by more than the tolerance.
//
// It exists because CI must not depend on tools outside the repository:
// benchstat needs an install step, benchdiff is `go run ./cmd/benchdiff`.
//
//	make bench-alloc | tee bench.txt
//	go run ./cmd/benchdiff -baseline BENCH_alloc.json bench.txt
//
// or, as one target: `make bench-compare`. Reading from stdin works too.
//
// The pass rule, per metric (bytes and allocs independently):
//
//	new <= base*(1+regress) + slack
//
// The multiplicative term is the headline tolerance (default 15%, per
// docs/performance.md). The additive slack exists for near-zero baselines:
// a 0 B/op baseline would otherwise fail on any nonzero reading, and
// sync.Pool warm-up noise under -benchtime=300x is worth a few hundred
// bytes. Defaults: 512 B and 1 alloc. Baselines large enough to matter
// are unaffected by the slack.
//
// When the same benchmark appears several times (multiple -count runs),
// the minimum reading is kept — the gate measures the floor the code can
// reach, not scheduler noise. Baseline benchmarks missing from the input
// fail the gate (a silently skipped benchmark is a rotten gate) unless
// -allow-missing is set; new benchmarks absent from the baseline are
// reported but never fail.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// measurement is one benchmark's memory profile.
type measurement struct {
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// baselineFile mirrors BENCH_alloc.json. Each benchmark's entry maps set
// names to measurements but may also carry string fields ("note"), so the
// sets stay raw until the requested one is picked out.
type baselineFile struct {
	Description string                                `json:"description"`
	Benchmarks  map[string]map[string]json.RawMessage `json:"benchmarks"`
}

// options holds the gate tolerances.
type options struct {
	regress      float64 // multiplicative tolerance, e.g. 0.15
	slackBytes   int64   // additive slack for B/op
	slackAllocs  int64   // additive slack for allocs/op
	allowMissing bool
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")
	var (
		baselinePath = flag.String("baseline", "BENCH_alloc.json", "committed baseline file")
		set          = flag.String("set", "current", "which baseline set to compare against")
		regress      = flag.Float64("regress", 0.15, "fail when B/op or allocs/op grow by more than this fraction")
		slackBytes   = flag.Int64("slack-bytes", 512, "additive B/op slack (protects near-zero baselines from noise)")
		slackAllocs  = flag.Int64("slack-allocs", 1, "additive allocs/op slack")
		allowMissing = flag.Bool("allow-missing", false, "do not fail when a baseline benchmark is absent from the input")
	)
	flag.Parse()

	var in io.Reader = os.Stdin
	src := "stdin"
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
		src = flag.Arg(0)
	}

	base, err := loadBaseline(*baselinePath, *set)
	if err != nil {
		log.Fatal(err)
	}
	results, err := parseBench(in)
	if err != nil {
		log.Fatal(err)
	}
	if len(results) == 0 {
		log.Fatalf("no benchmark lines with -benchmem output found in %s", src)
	}

	opts := options{regress: *regress, slackBytes: *slackBytes, slackAllocs: *slackAllocs, allowMissing: *allowMissing}
	rows, failed := compare(base, results, opts)
	fmt.Print(renderRows(rows, *set, opts))
	if failed {
		log.Fatalf("FAIL: allocation regression beyond %.0f%% against %s %q", *regress*100, *baselinePath, *set)
	}
	fmt.Printf("benchdiff: PASS (%d benchmarks within %.0f%% of %q)\n", len(rows), *regress*100, *set)
}

// loadBaseline reads the named measurement set out of the baseline file.
func loadBaseline(path, set string) (map[string]measurement, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf baselineFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]measurement, len(bf.Benchmarks))
	for name, sets := range bf.Benchmarks {
		raw, ok := sets[set]
		if !ok {
			return nil, fmt.Errorf("%s: benchmark %q has no set %q", path, name, set)
		}
		var m measurement
		if err := json.Unmarshal(raw, &m); err != nil {
			return nil, fmt.Errorf("%s: benchmark %q set %q: %w", path, name, set, err)
		}
		out[name] = m
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in baseline", path)
	}
	return out, nil
}

// benchLine matches `go test -bench -benchmem` result lines, e.g.
//
//	BenchmarkAllocWriterSteady-8   300   5067 ns/op   0 B/op   0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.+)$`)

// parseBench extracts {name -> measurement} from benchmark output. When a
// benchmark repeats, the minimum of each metric is kept.
func parseBench(r io.Reader) (map[string]measurement, error) {
	out := map[string]measurement{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name, rest := m[1], strings.Fields(m[2])
		var cur measurement
		found := 0
		for i := 1; i < len(rest); i++ {
			v, err := strconv.ParseFloat(rest[i-1], 64)
			if err != nil {
				continue
			}
			switch rest[i] {
			case "B/op":
				cur.BytesPerOp = int64(v)
				found++
			case "allocs/op":
				cur.AllocsPerOp = int64(v)
				found++
			}
		}
		if found < 2 {
			continue // no -benchmem columns on this line
		}
		if prev, ok := out[name]; ok {
			cur.BytesPerOp = min(cur.BytesPerOp, prev.BytesPerOp)
			cur.AllocsPerOp = min(cur.AllocsPerOp, prev.AllocsPerOp)
		}
		out[name] = cur
	}
	return out, sc.Err()
}

// verdicts a row can carry.
const (
	verdictOK      = "ok"
	verdictFail    = "FAIL"
	verdictMissing = "MISSING"
	verdictNew     = "new"
)

// row is one benchmark's comparison outcome.
type row struct {
	name    string
	base    measurement
	got     measurement
	verdict string
	reasons []string
}

// exceeds reports whether got regresses past base under the gate rule
// `got <= base*(1+regress) + slack`.
func exceeds(got, base int64, regress float64, slack int64) bool {
	limit := int64(float64(base)*(1+regress)+0.5) + slack
	return got > limit
}

// compare evaluates every baseline benchmark against the parsed results
// and reports whether the gate failed.
func compare(base, results map[string]measurement, opts options) ([]row, bool) {
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	rows := make([]row, 0, len(names))
	for _, name := range names {
		b := base[name]
		got, ok := results[name]
		if !ok {
			r := row{name: name, base: b, verdict: verdictMissing}
			if !opts.allowMissing {
				failed = true
				r.reasons = append(r.reasons, "benchmark missing from input")
			}
			rows = append(rows, r)
			continue
		}
		r := row{name: name, base: b, got: got, verdict: verdictOK}
		if exceeds(got.BytesPerOp, b.BytesPerOp, opts.regress, opts.slackBytes) {
			r.reasons = append(r.reasons, fmt.Sprintf("B/op %d > %d+%.0f%%+%d", got.BytesPerOp, b.BytesPerOp, opts.regress*100, opts.slackBytes))
		}
		if exceeds(got.AllocsPerOp, b.AllocsPerOp, opts.regress, opts.slackAllocs) {
			r.reasons = append(r.reasons, fmt.Sprintf("allocs/op %d > %d+%.0f%%+%d", got.AllocsPerOp, b.AllocsPerOp, opts.regress*100, opts.slackAllocs))
		}
		if len(r.reasons) > 0 {
			r.verdict = verdictFail
			failed = true
		}
		rows = append(rows, r)
	}

	// Benchmarks present in the run but absent from the baseline:
	// informational only — they need a baseline entry, not a verdict.
	extra := make([]string, 0)
	for name := range results {
		if _, ok := base[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		rows = append(rows, row{name: name, got: results[name], verdict: verdictNew})
	}
	return rows, failed
}

// renderRows formats the comparison as an aligned table.
func renderRows(rows []row, set string, opts options) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "baseline set %q, tolerance +%.0f%%\n", set, opts.regress*100)
	fmt.Fprintf(&sb, "%-34s %12s %12s %12s %12s  %s\n",
		"benchmark", "base B/op", "got B/op", "base allocs", "got allocs", "verdict")
	for _, r := range rows {
		gb, ga := "-", "-"
		if r.verdict != verdictMissing {
			gb, ga = strconv.FormatInt(r.got.BytesPerOp, 10), strconv.FormatInt(r.got.AllocsPerOp, 10)
		}
		bb, ba := strconv.FormatInt(r.base.BytesPerOp, 10), strconv.FormatInt(r.base.AllocsPerOp, 10)
		if r.verdict == verdictNew {
			bb, ba = "-", "-"
		}
		note := r.verdict
		if len(r.reasons) > 0 {
			note += " (" + strings.Join(r.reasons, "; ") + ")"
		}
		fmt.Fprintf(&sb, "%-34s %12s %12s %12s %12s  %s\n", r.name, bb, gb, ba, ga, note)
	}
	return sb.String()
}
