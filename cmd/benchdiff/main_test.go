package main

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: adaptio/internal/stream
cpu: whatever
BenchmarkAllocWriterSteady-8   	     300	      5067 ns/op	 25882.51 MB/s	       0 B/op	       0 allocs/op
BenchmarkAllocReaderSteady-8   	     300	      4012 ns/op	       0 B/op	       0 allocs/op
BenchmarkAllocWriterChurn-8    	     300	     91042 ns/op	     600 B/op	       3 allocs/op
BenchmarkNotMem-8              	     300	      1000 ns/op
PASS
ok  	adaptio/internal/stream	1.2s
BenchmarkAllocWriterChurn-8    	     300	     90000 ns/op	     550 B/op	       4 allocs/op
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %+v", len(got), got)
	}
	if m := got["BenchmarkAllocWriterSteady"]; m.BytesPerOp != 0 || m.AllocsPerOp != 0 {
		t.Fatalf("WriterSteady = %+v, want zero mem", m)
	}
	if m := got["BenchmarkAllocWriterSteady"]; m.NsPerOp != 5067 || m.MBPerS != 25882.51 || !m.hasSpeed {
		t.Fatalf("WriterSteady = %+v, want ns/op 5067 and MB/s 25882.51", m)
	}
	// Repeated benchmark keeps the per-metric minimum: 550 B from the
	// second run, 3 allocs from the first, 90000 ns from the second.
	if m := got["BenchmarkAllocWriterChurn"]; m.BytesPerOp != 550 || m.AllocsPerOp != 3 || m.NsPerOp != 90000 {
		t.Fatalf("WriterChurn = %+v, want {550 3 90000}", m)
	}
	// A line without -benchmem columns still carries ns/op for the
	// throughput gate, but is marked memless so the alloc gate treats it
	// as missing.
	if m, ok := got["BenchmarkNotMem"]; !ok || m.hasMem || !m.hasSpeed || m.NsPerOp != 1000 {
		t.Fatalf("NotMem = %+v ok=%v, want speed-only measurement", m, ok)
	}
}

func TestCompareAllocModeSkipsMemlessLines(t *testing.T) {
	base := map[string]measurement{"BenchmarkA": {BytesPerOp: 100, AllocsPerOp: 1}}
	results := map[string]measurement{"BenchmarkA": {NsPerOp: 50, hasSpeed: true}}
	opts := options{mode: modeAlloc, regress: 0.15, slackBytes: 512, slackAllocs: 1}
	rows, failed := compare(base, results, opts)
	if !failed || rows[0].verdict != verdictMissing {
		t.Fatalf("speed-only input must count as MISSING in alloc mode, got %+v", rows[0])
	}
}

func TestCompareThroughputMode(t *testing.T) {
	base := map[string]measurement{
		"BenchmarkTPFast": {MBPerS: 1000, NsPerOp: 100000},
		"BenchmarkTPNoMB": {NsPerOp: 5000},
	}
	opts := options{mode: modeThroughput, regress: 0.40}

	t.Run("within tolerance passes", func(t *testing.T) {
		results := map[string]measurement{
			"BenchmarkTPFast": {MBPerS: 601, NsPerOp: 139000, hasSpeed: true},
			"BenchmarkTPNoMB": {NsPerOp: 6999, hasSpeed: true},
		}
		if rows, failed := compare(base, results, opts); failed {
			t.Fatalf("gate failed, rows: %+v", rows)
		}
	})

	t.Run("MB/s collapse fails", func(t *testing.T) {
		results := map[string]measurement{
			"BenchmarkTPFast": {MBPerS: 400, NsPerOp: 100000, hasSpeed: true},
			"BenchmarkTPNoMB": {NsPerOp: 5000, hasSpeed: true},
		}
		rows, failed := compare(base, results, opts)
		if !failed || rows[0].verdict != verdictFail {
			t.Fatalf("40%% MB/s loss must fail, rows: %+v", rows)
		}
	})

	t.Run("ns/op fallback gates MB/s-less benchmarks", func(t *testing.T) {
		results := map[string]measurement{
			"BenchmarkTPFast": {MBPerS: 1000, hasSpeed: true},
			"BenchmarkTPNoMB": {NsPerOp: 8000, hasSpeed: true},
		}
		if _, failed := compare(base, results, opts); !failed {
			t.Fatal("60% ns/op growth must fail the ns fallback gate")
		}
	})

	t.Run("ns/op regression caught even when MB/s holds", func(t *testing.T) {
		// The historical else-if skipped the ns/op check whenever the
		// baseline carried MB/s; both metrics now gate independently.
		results := map[string]measurement{
			"BenchmarkTPFast": {MBPerS: 1000, NsPerOp: 150000, hasSpeed: true},
			"BenchmarkTPNoMB": {NsPerOp: 5000, hasSpeed: true},
		}
		rows, failed := compare(base, results, opts)
		if !failed || rows[0].verdict != verdictFail {
			t.Fatalf("50%% ns/op growth with stable MB/s must fail, rows: %+v", rows)
		}
	})

	t.Run("mem-only line counts as missing", func(t *testing.T) {
		results := map[string]measurement{
			"BenchmarkTPFast": {MBPerS: 1000, hasSpeed: true},
			"BenchmarkTPNoMB": {BytesPerOp: 1, AllocsPerOp: 1, hasMem: true},
		}
		if _, failed := compare(base, results, opts); !failed {
			t.Fatal("input without speed columns must count as missing")
		}
	})
}

// TestComparePerBenchmarkRegressOverride pins the baseline-entry "regress"
// field: it replaces the global tolerance for that one benchmark only.
func TestComparePerBenchmarkRegressOverride(t *testing.T) {
	base := map[string]measurement{
		"BenchmarkTight": {MBPerS: 100, NsPerOp: 1000, Regress: 0.25},
		"BenchmarkLoose": {MBPerS: 100, NsPerOp: 1000},
	}
	opts := options{mode: modeThroughput, regress: 0.40}

	t.Run("override tightens one row", func(t *testing.T) {
		// 70 MB/s is a 30% drop: inside the global 0.40 tolerance, outside
		// the overridden 0.25 — so only the tight row may fail.
		results := map[string]measurement{
			"BenchmarkTight": {MBPerS: 70, NsPerOp: 1000, hasSpeed: true},
			"BenchmarkLoose": {MBPerS: 70, NsPerOp: 1000, hasSpeed: true},
		}
		rows, failed := compare(base, results, opts)
		if !failed {
			t.Fatalf("30%% drop must fail the 0.25 override, rows: %+v", rows)
		}
		for _, r := range rows {
			switch r.name {
			case "BenchmarkTight":
				if r.verdict != verdictFail {
					t.Fatalf("tight row = %+v, want FAIL", r)
				}
			case "BenchmarkLoose":
				if r.verdict == verdictFail {
					t.Fatalf("loose row = %+v, want pass under global 0.40", r)
				}
			}
		}
	})

	t.Run("within the override passes", func(t *testing.T) {
		results := map[string]measurement{
			"BenchmarkTight": {MBPerS: 80, NsPerOp: 1100, hasSpeed: true},
			"BenchmarkLoose": {MBPerS: 61, NsPerOp: 1000, hasSpeed: true},
		}
		if rows, failed := compare(base, results, opts); failed {
			t.Fatalf("20%% drop is inside the 0.25 override, rows: %+v", rows)
		}
	})

	t.Run("override gates ns/op too", func(t *testing.T) {
		results := map[string]measurement{
			"BenchmarkTight": {MBPerS: 100, NsPerOp: 1300, hasSpeed: true},
			"BenchmarkLoose": {MBPerS: 100, NsPerOp: 1300, hasSpeed: true},
		}
		rows, failed := compare(base, results, opts)
		if !failed {
			t.Fatalf("30%% ns/op growth must fail the 0.25 override, rows: %+v", rows)
		}
		for _, r := range rows {
			if r.name == "BenchmarkLoose" && r.verdict == verdictFail {
				t.Fatalf("loose row = %+v, want pass under global 0.40", r)
			}
		}
	})
}

// TestCompareThroughputReportsAllRegressions is the multi-regression
// contract: when several benchmarks regress in one run, every one of them
// must carry a FAIL verdict with a reason, and failingNames must enumerate
// them all — the gate may not surface just the first casualty.
func TestCompareThroughputReportsAllRegressions(t *testing.T) {
	base := map[string]measurement{
		"BenchmarkTPAlpha": {MBPerS: 2000, NsPerOp: 50000},
		"BenchmarkTPBeta":  {MBPerS: 800},
		"BenchmarkTPGamma": {NsPerOp: 3000},
		"BenchmarkTPOK":    {MBPerS: 100},
	}
	opts := options{mode: modeThroughput, regress: 0.40}
	cases := []struct {
		name        string
		results     map[string]measurement
		wantFailing []string
		wantReasons map[string]int // FAIL rows -> number of reasons
	}{
		{
			name: "two MB/s collapses",
			results: map[string]measurement{
				"BenchmarkTPAlpha": {MBPerS: 100, NsPerOp: 50000, hasSpeed: true},
				"BenchmarkTPBeta":  {MBPerS: 100, hasSpeed: true},
				"BenchmarkTPGamma": {NsPerOp: 3000, hasSpeed: true},
				"BenchmarkTPOK":    {MBPerS: 100, hasSpeed: true},
			},
			wantFailing: []string{"BenchmarkTPAlpha", "BenchmarkTPBeta"},
			wantReasons: map[string]int{"BenchmarkTPAlpha": 1, "BenchmarkTPBeta": 1},
		},
		{
			name: "every family regresses at once",
			results: map[string]measurement{
				"BenchmarkTPAlpha": {MBPerS: 100, NsPerOp: 900000, hasSpeed: true},
				"BenchmarkTPBeta":  {MBPerS: 1, hasSpeed: true},
				"BenchmarkTPGamma": {NsPerOp: 9000, hasSpeed: true},
				"BenchmarkTPOK":    {MBPerS: 100, hasSpeed: true},
			},
			wantFailing: []string{"BenchmarkTPAlpha", "BenchmarkTPBeta", "BenchmarkTPGamma"},
			// Alpha regresses both of its baseline metrics: two reasons.
			wantReasons: map[string]int{"BenchmarkTPAlpha": 2, "BenchmarkTPBeta": 1, "BenchmarkTPGamma": 1},
		},
		{
			name: "missing benchmark joins the enumeration",
			results: map[string]measurement{
				"BenchmarkTPAlpha": {MBPerS: 2000, NsPerOp: 50000, hasSpeed: true},
				"BenchmarkTPBeta":  {MBPerS: 100, hasSpeed: true},
				"BenchmarkTPOK":    {MBPerS: 100, hasSpeed: true},
			},
			wantFailing: []string{"BenchmarkTPBeta", "BenchmarkTPGamma"},
			wantReasons: map[string]int{"BenchmarkTPBeta": 1},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rows, failed := compare(base, c.results, opts)
			if !failed {
				t.Fatal("gate must fail")
			}
			got := failingNames(rows)
			if len(got) != len(c.wantFailing) {
				t.Fatalf("failingNames = %v, want %v", got, c.wantFailing)
			}
			for i, name := range c.wantFailing {
				if got[i] != name {
					t.Fatalf("failingNames = %v, want %v", got, c.wantFailing)
				}
			}
			for _, r := range rows {
				want, isFail := c.wantReasons[r.name]
				if isFail {
					if r.verdict != verdictFail || len(r.reasons) != want {
						t.Errorf("%s: verdict %q with %d reason(s) %v, want FAIL with %d",
							r.name, r.verdict, len(r.reasons), r.reasons, want)
					}
				} else if r.verdict == verdictFail {
					t.Errorf("%s unexpectedly FAILed: %v", r.name, r.reasons)
				}
			}
		})
	}
}

const sampleArtifact = `{
  "description": "decider policy matrix",
  "benchmarks": {
    "Decider/algone/high/bg0": {"current": {"mb_per_s": 55.2, "probes": 12, "wasted_probes": 4}},
    "Decider/algone/totals":   {"current": {"probes": 170, "wasted_probes": 63}}
  }
}`

func TestParseArtifact(t *testing.T) {
	got, err := parseArtifact(strings.NewReader(sampleArtifact), "current")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d entries, want 2: %+v", len(got), got)
	}
	if m := got["Decider/algone/high/bg0"]; m.MBPerS != 55.2 || m.Probes != 12 || m.WastedProbes != 4 {
		t.Fatalf("cell entry = %+v, want {55.2 12 4}", m)
	}
	if m := got["Decider/algone/totals"]; m.WastedProbes != 63 || m.MBPerS != 0 {
		t.Fatalf("totals entry = %+v, want wasted 63 and no MB/s", m)
	}
	if _, err := parseArtifact(strings.NewReader(sampleArtifact), "nonesuch"); err == nil {
		t.Fatal("missing set name must be an error")
	}
	if _, err := parseArtifact(strings.NewReader("not json"), "current"); err == nil {
		t.Fatal("malformed artifact must be an error")
	}
}

func TestCompareDeciderMode(t *testing.T) {
	base := map[string]measurement{
		"Decider/bandit/high/bg0": {MBPerS: 50, WastedProbes: 10},
		"Decider/bandit/totals":   {WastedProbes: 60},
	}
	opts := options{mode: modeDecider, regress: 0.15, slackProbes: 2}

	t.Run("within tolerance passes", func(t *testing.T) {
		results := map[string]measurement{
			"Decider/bandit/high/bg0": {MBPerS: 48, WastedProbes: 11},
			"Decider/bandit/totals":   {WastedProbes: 69},
		}
		if rows, failed := compare(base, results, opts); failed {
			t.Fatalf("gate failed, rows: %+v", rows)
		}
	})

	t.Run("probe regression fails", func(t *testing.T) {
		results := map[string]measurement{
			"Decider/bandit/high/bg0": {MBPerS: 50, WastedProbes: 10},
			"Decider/bandit/totals":   {WastedProbes: 90},
		}
		rows, failed := compare(base, results, opts)
		if !failed {
			t.Fatalf("50%% wasted-probe growth must fail, rows: %+v", rows)
		}
		for _, r := range rows {
			if r.name == "Decider/bandit/totals" && r.verdict != verdictFail {
				t.Fatalf("totals verdict = %q, want FAIL", r.verdict)
			}
		}
	})

	t.Run("throughput collapse fails", func(t *testing.T) {
		results := map[string]measurement{
			"Decider/bandit/high/bg0": {MBPerS: 30, WastedProbes: 10},
			"Decider/bandit/totals":   {WastedProbes: 60},
		}
		if _, failed := compare(base, results, opts); !failed {
			t.Fatal("40% MB/s loss must fail the decider gate")
		}
	})

	t.Run("probe slack protects near-zero baselines", func(t *testing.T) {
		nearZero := map[string]measurement{"Decider/ewma/low/bg0": {MBPerS: 50, WastedProbes: 0}}
		results := map[string]measurement{"Decider/ewma/low/bg0": {MBPerS: 50, WastedProbes: 2}}
		if rows, failed := compare(nearZero, results, opts); failed {
			t.Fatalf("+2 wasted on a zero baseline must stay within slack, rows: %+v", rows)
		}
		results["Decider/ewma/low/bg0"] = measurement{MBPerS: 50, WastedProbes: 3}
		if _, failed := compare(nearZero, results, opts); !failed {
			t.Fatal("+3 wasted on a zero baseline must exceed the slack")
		}
	})
}

func TestExceeds(t *testing.T) {
	cases := []struct {
		got, base int64
		regress   float64
		slack     int64
		want      bool
	}{
		{got: 0, base: 0, regress: 0.15, slack: 512, want: false},
		{got: 512, base: 0, regress: 0.15, slack: 512, want: false}, // slack floor
		{got: 513, base: 0, regress: 0.15, slack: 512, want: true},
		{got: 115, base: 100, regress: 0.15, slack: 0, want: false}, // exactly +15%
		{got: 116, base: 100, regress: 0.15, slack: 0, want: true},
		{got: 1_150_000, base: 1_000_000, regress: 0.15, slack: 512, want: false},
		{got: 1_160_000, base: 1_000_000, regress: 0.15, slack: 512, want: true},
		{got: 1, base: 0, regress: 0.15, slack: 1, want: false}, // allocs slack
		{got: 2, base: 0, regress: 0.15, slack: 1, want: true},
	}
	for _, c := range cases {
		if got := exceeds(c.got, c.base, c.regress, c.slack); got != c.want {
			t.Errorf("exceeds(%d, %d, %v, %d) = %v, want %v", c.got, c.base, c.regress, c.slack, got, c.want)
		}
	}
}

func TestCompareVerdicts(t *testing.T) {
	base := map[string]measurement{
		"BenchmarkA": {BytesPerOp: 1000, AllocsPerOp: 10},
		"BenchmarkB": {BytesPerOp: 0, AllocsPerOp: 0},
		"BenchmarkC": {BytesPerOp: 500, AllocsPerOp: 5},
	}
	opts := options{regress: 0.15, slackBytes: 512, slackAllocs: 1}

	t.Run("all within tolerance", func(t *testing.T) {
		results := map[string]measurement{
			"BenchmarkA": {BytesPerOp: 1100, AllocsPerOp: 11},
			"BenchmarkB": {BytesPerOp: 100, AllocsPerOp: 1},
			"BenchmarkC": {BytesPerOp: 400, AllocsPerOp: 4},
		}
		rows, failed := compare(base, results, opts)
		if failed {
			t.Fatalf("gate failed, rows: %+v", rows)
		}
		if len(rows) != 3 {
			t.Fatalf("got %d rows, want 3", len(rows))
		}
	})

	t.Run("bytes regression fails", func(t *testing.T) {
		results := map[string]measurement{
			"BenchmarkA": {BytesPerOp: 5000, AllocsPerOp: 10},
			"BenchmarkB": {},
			"BenchmarkC": {BytesPerOp: 500, AllocsPerOp: 5},
		}
		rows, failed := compare(base, results, opts)
		if !failed {
			t.Fatal("5x B/op growth must fail the gate")
		}
		if rows[0].verdict != verdictFail {
			t.Fatalf("BenchmarkA verdict = %q, want FAIL", rows[0].verdict)
		}
	})

	t.Run("allocs regression fails", func(t *testing.T) {
		results := map[string]measurement{
			"BenchmarkA": {BytesPerOp: 1000, AllocsPerOp: 20},
			"BenchmarkB": {},
			"BenchmarkC": {BytesPerOp: 500, AllocsPerOp: 5},
		}
		if _, failed := compare(base, results, opts); !failed {
			t.Fatal("2x allocs/op growth must fail the gate")
		}
	})

	t.Run("missing benchmark fails unless allowed", func(t *testing.T) {
		results := map[string]measurement{
			"BenchmarkA": {BytesPerOp: 1000, AllocsPerOp: 10},
			"BenchmarkC": {BytesPerOp: 500, AllocsPerOp: 5},
		}
		if _, failed := compare(base, results, opts); !failed {
			t.Fatal("missing baseline benchmark must fail")
		}
		lax := opts
		lax.allowMissing = true
		rows, failed := compare(base, results, lax)
		if failed {
			t.Fatal("missing benchmark must pass with -allow-missing")
		}
		for _, r := range rows {
			if r.name == "BenchmarkB" && r.verdict != verdictMissing {
				t.Fatalf("BenchmarkB verdict = %q, want MISSING", r.verdict)
			}
		}
	})

	t.Run("new benchmark is informational", func(t *testing.T) {
		results := map[string]measurement{
			"BenchmarkA": {BytesPerOp: 1000, AllocsPerOp: 10},
			"BenchmarkB": {},
			"BenchmarkC": {BytesPerOp: 500, AllocsPerOp: 5},
			"BenchmarkD": {BytesPerOp: 1 << 20, AllocsPerOp: 999},
		}
		rows, failed := compare(base, results, opts)
		if failed {
			t.Fatal("unbaselined benchmark must not fail the gate")
		}
		last := rows[len(rows)-1]
		if last.name != "BenchmarkD" || last.verdict != verdictNew {
			t.Fatalf("last row = %+v, want BenchmarkD/new", last)
		}
	})
}

func TestRenderRowsMentionsEverything(t *testing.T) {
	rows := []row{
		{name: "BenchmarkA", base: measurement{BytesPerOp: 1000, AllocsPerOp: 10}, got: measurement{BytesPerOp: 900, AllocsPerOp: 9}, verdict: verdictOK},
		{name: "BenchmarkB", base: measurement{BytesPerOp: 10, AllocsPerOp: 1}, got: measurement{BytesPerOp: 9000, AllocsPerOp: 1}, verdict: verdictFail, reasons: []string{"B/op 9000 > 10+15%+512"}},
	}
	out := renderRows(rows, "post_arena", options{regress: 0.15})
	for _, want := range []string{"BenchmarkA", "BenchmarkB", "FAIL", "9000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render output missing %q:\n%s", want, out)
		}
	}
	tp := []row{
		{name: "BenchmarkTP", base: measurement{MBPerS: 1000, NsPerOp: 100}, got: measurement{MBPerS: 450.5, NsPerOp: 222}, verdict: verdictFail, reasons: []string{"MB/s 450.5 < 1000.0-40%"}},
	}
	out = renderRows(tp, "current", options{mode: modeThroughput, regress: 0.40})
	for _, want := range []string{"BenchmarkTP", "450.50", "1000.00", "FAIL"} {
		if !strings.Contains(out, want) {
			t.Fatalf("throughput render output missing %q:\n%s", want, out)
		}
	}
}
