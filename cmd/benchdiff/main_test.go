package main

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: adaptio/internal/stream
cpu: whatever
BenchmarkAllocWriterSteady-8   	     300	      5067 ns/op	 25882.51 MB/s	       0 B/op	       0 allocs/op
BenchmarkAllocReaderSteady-8   	     300	      4012 ns/op	       0 B/op	       0 allocs/op
BenchmarkAllocWriterChurn-8    	     300	     91042 ns/op	     600 B/op	       3 allocs/op
BenchmarkNotMem-8              	     300	      1000 ns/op
PASS
ok  	adaptio/internal/stream	1.2s
BenchmarkAllocWriterChurn-8    	     300	     90000 ns/op	     550 B/op	       4 allocs/op
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(got), got)
	}
	if m := got["BenchmarkAllocWriterSteady"]; m.BytesPerOp != 0 || m.AllocsPerOp != 0 {
		t.Fatalf("WriterSteady = %+v, want zeros", m)
	}
	// Repeated benchmark keeps the per-metric minimum: 550 B from the
	// second run, 3 allocs from the first.
	if m := got["BenchmarkAllocWriterChurn"]; m.BytesPerOp != 550 || m.AllocsPerOp != 3 {
		t.Fatalf("WriterChurn = %+v, want {550 3}", m)
	}
	if _, ok := got["BenchmarkNotMem"]; ok {
		t.Fatal("line without -benchmem columns must be skipped")
	}
}

func TestExceeds(t *testing.T) {
	cases := []struct {
		got, base int64
		regress   float64
		slack     int64
		want      bool
	}{
		{got: 0, base: 0, regress: 0.15, slack: 512, want: false},
		{got: 512, base: 0, regress: 0.15, slack: 512, want: false}, // slack floor
		{got: 513, base: 0, regress: 0.15, slack: 512, want: true},
		{got: 115, base: 100, regress: 0.15, slack: 0, want: false}, // exactly +15%
		{got: 116, base: 100, regress: 0.15, slack: 0, want: true},
		{got: 1_150_000, base: 1_000_000, regress: 0.15, slack: 512, want: false},
		{got: 1_160_000, base: 1_000_000, regress: 0.15, slack: 512, want: true},
		{got: 1, base: 0, regress: 0.15, slack: 1, want: false}, // allocs slack
		{got: 2, base: 0, regress: 0.15, slack: 1, want: true},
	}
	for _, c := range cases {
		if got := exceeds(c.got, c.base, c.regress, c.slack); got != c.want {
			t.Errorf("exceeds(%d, %d, %v, %d) = %v, want %v", c.got, c.base, c.regress, c.slack, got, c.want)
		}
	}
}

func TestCompareVerdicts(t *testing.T) {
	base := map[string]measurement{
		"BenchmarkA": {BytesPerOp: 1000, AllocsPerOp: 10},
		"BenchmarkB": {BytesPerOp: 0, AllocsPerOp: 0},
		"BenchmarkC": {BytesPerOp: 500, AllocsPerOp: 5},
	}
	opts := options{regress: 0.15, slackBytes: 512, slackAllocs: 1}

	t.Run("all within tolerance", func(t *testing.T) {
		results := map[string]measurement{
			"BenchmarkA": {BytesPerOp: 1100, AllocsPerOp: 11},
			"BenchmarkB": {BytesPerOp: 100, AllocsPerOp: 1},
			"BenchmarkC": {BytesPerOp: 400, AllocsPerOp: 4},
		}
		rows, failed := compare(base, results, opts)
		if failed {
			t.Fatalf("gate failed, rows: %+v", rows)
		}
		if len(rows) != 3 {
			t.Fatalf("got %d rows, want 3", len(rows))
		}
	})

	t.Run("bytes regression fails", func(t *testing.T) {
		results := map[string]measurement{
			"BenchmarkA": {BytesPerOp: 5000, AllocsPerOp: 10},
			"BenchmarkB": {},
			"BenchmarkC": {BytesPerOp: 500, AllocsPerOp: 5},
		}
		rows, failed := compare(base, results, opts)
		if !failed {
			t.Fatal("5x B/op growth must fail the gate")
		}
		if rows[0].verdict != verdictFail {
			t.Fatalf("BenchmarkA verdict = %q, want FAIL", rows[0].verdict)
		}
	})

	t.Run("allocs regression fails", func(t *testing.T) {
		results := map[string]measurement{
			"BenchmarkA": {BytesPerOp: 1000, AllocsPerOp: 20},
			"BenchmarkB": {},
			"BenchmarkC": {BytesPerOp: 500, AllocsPerOp: 5},
		}
		if _, failed := compare(base, results, opts); !failed {
			t.Fatal("2x allocs/op growth must fail the gate")
		}
	})

	t.Run("missing benchmark fails unless allowed", func(t *testing.T) {
		results := map[string]measurement{
			"BenchmarkA": {BytesPerOp: 1000, AllocsPerOp: 10},
			"BenchmarkC": {BytesPerOp: 500, AllocsPerOp: 5},
		}
		if _, failed := compare(base, results, opts); !failed {
			t.Fatal("missing baseline benchmark must fail")
		}
		lax := opts
		lax.allowMissing = true
		rows, failed := compare(base, results, lax)
		if failed {
			t.Fatal("missing benchmark must pass with -allow-missing")
		}
		for _, r := range rows {
			if r.name == "BenchmarkB" && r.verdict != verdictMissing {
				t.Fatalf("BenchmarkB verdict = %q, want MISSING", r.verdict)
			}
		}
	})

	t.Run("new benchmark is informational", func(t *testing.T) {
		results := map[string]measurement{
			"BenchmarkA": {BytesPerOp: 1000, AllocsPerOp: 10},
			"BenchmarkB": {},
			"BenchmarkC": {BytesPerOp: 500, AllocsPerOp: 5},
			"BenchmarkD": {BytesPerOp: 1 << 20, AllocsPerOp: 999},
		}
		rows, failed := compare(base, results, opts)
		if failed {
			t.Fatal("unbaselined benchmark must not fail the gate")
		}
		last := rows[len(rows)-1]
		if last.name != "BenchmarkD" || last.verdict != verdictNew {
			t.Fatalf("last row = %+v, want BenchmarkD/new", last)
		}
	})
}

func TestRenderRowsMentionsEverything(t *testing.T) {
	rows := []row{
		{name: "BenchmarkA", base: measurement{1000, 10}, got: measurement{900, 9}, verdict: verdictOK},
		{name: "BenchmarkB", base: measurement{10, 1}, got: measurement{9000, 1}, verdict: verdictFail, reasons: []string{"B/op 9000 > 10+15%+512"}},
	}
	out := renderRows(rows, "post_arena", options{regress: 0.15})
	for _, want := range []string{"BenchmarkA", "BenchmarkB", "FAIL", "9000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render output missing %q:\n%s", want, out)
		}
	}
}
