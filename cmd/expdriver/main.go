// Command expdriver regenerates the paper's evaluation: every figure and
// table of "Evaluating Adaptive Compression to Mitigate the Effects of
// Shared I/O in Clouds" (IPDPS 2011) plus the ablation studies listed in
// DESIGN.md. With no flags it runs everything at the paper's 50 GB volume.
//
// Usage:
//
//	expdriver [-fig1] [-fig2] [-fig3] [-table2] [-fig4] [-fig5] [-fig6]
//	          [-ablations] [-calibrate] [-gb N] [-runs N] [-seed N]
//	          [-live-profiles]
//
// -live-profiles recalibrates the transfer model from this machine's own
// codecs instead of the paper-derived reference profiles (Table II only
// reports the reference profile by default so output is reproducible).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"adaptio/internal/block"
	"adaptio/internal/cloudsim"
	"adaptio/internal/experiments"
	"adaptio/internal/loadgen"
	"adaptio/internal/obs"
	"adaptio/internal/tunnel"
)

func main() {
	var (
		fig1       = flag.Bool("fig1", false, "Figure 1: CPU utilization accuracy")
		fig2       = flag.Bool("fig2", false, "Figure 2: network throughput distribution")
		fig3       = flag.Bool("fig3", false, "Figure 3: file write throughput distribution")
		table2     = flag.Bool("table2", false, "Table II: completion time grid")
		fig4       = flag.Bool("fig4", false, "Figure 4: adaptivity trace (HIGH, no load)")
		fig5       = flag.Bool("fig5", false, "Figure 5: adaptivity trace (LOW, 2 connections)")
		fig6       = flag.Bool("fig6", false, "Figure 6: compressibility switching")
		ablations  = flag.Bool("ablations", false, "ablations A1-A5")
		claims     = flag.Bool("claims", false, "paper claims checklist (PASS/FAIL per quantitative claim)")
		calibrate  = flag.Bool("calibrate", false, "live codec calibration")
		gb         = flag.Float64("gb", 50, "data volume per transfer in GB (decimal)")
		runs       = flag.Int("runs", 5, "repetitions per Table II cell")
		seed       = flag.Uint64("seed", 2011, "random seed")
		liveProf   = flag.Bool("live-profiles", false, "drive Table II with profiles measured live from this repo's codecs instead of the paper-derived reference")
		csvDir     = flag.String("csv", "", "also write each experiment's raw data as CSV into this directory")
		scenario   = flag.String("scenario", "", "run a runtime scenario instead of the paper experiments: 'soak' (docs/scaling.md), 'sharednic' (docs/coordination.md), a built-in scenario-DSL name (diurnal, heavytail, lossy, flaps, hetfleet, diurnal-lossy-1000 — docs/scenarios.md), or a path to a scenario JSON file")
		decider    = flag.String("decider", "", "for scenario-DSL runs: level-selection policy driving the adaptive variant (algone, bandit, ewma — docs/deciders.md)")
		dmatrix    = flag.Bool("decider-matrix", false, "run the Table II completion-time matrix under every registered decider policy plus the CheatStick sentinel (docs/deciders.md)")
		jsonOut    = flag.String("json-out", "", "for -decider-matrix: write the benchfmt JSON artifact to this file (schema of BENCH_decider.json, gated by cmd/benchdiff -mode decider)")
		streams    = flag.Int("streams", 128, "fleet size for -scenario sharednic")
		metricsOut = flag.String("metrics-out", "", "for runtime scenarios: write the JSON result artifact to this file (CI artifact)")
		parallel   = flag.Int("parallel", 4, "for scenario-DSL runs: variants simulated concurrently (results are byte-identical for any value)")
		rig        = flag.String("rig", "", "for scenario-DSL runs: apply a sentinel property-breaker (test use only; see internal/scenario.Rig)")
		maxWall    = flag.Duration("max-wall", 0, "for scenario-DSL runs: fail unless the run finishes within this wall-clock budget (0 = no budget)")
	)
	flag.Parse()

	if *dmatrix {
		os.Exit(runDeciderMatrix(*seed, *jsonOut))
	}
	switch *scenario {
	case "":
		if *decider != "" {
			fmt.Fprintln(os.Stderr, "expdriver: -decider only applies to scenario-DSL runs (-scenario <name|file>)")
			os.Exit(2)
		}
	case "soak":
		os.Exit(runSoak(*seed))
	case "sharednic":
		os.Exit(runSharedNIC(*seed, *streams, *metricsOut))
	default:
		os.Exit(runScenario(*scenario, *seed, *parallel, *rig, *decider, *metricsOut, *maxWall))
	}

	// Process-wide metrics: the experiments run in-process, so the buffer
	// arena's counters summarize the run's data-plane churn. Printed at the
	// end of the run.
	reg := obs.NewRegistry()
	block.PublishMetrics(reg.Scope("block"))
	exitCode := 0

	saveCSV := func(name, content string) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "expdriver: csv dir: %v\n", err)
			os.Exit(1)
		}
		path := filepath.Join(*csvDir, name+".csv")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "expdriver: write %s: %v\n", path, err)
			os.Exit(1)
		}
	}

	all := !(*fig1 || *fig2 || *fig3 || *table2 || *fig4 || *fig5 || *fig6 || *ablations || *claims || *calibrate)
	volume := int64(*gb * 1e9)

	fail := func(what string, err error) {
		fmt.Fprintf(os.Stderr, "expdriver: %s: %v\n", what, err)
		os.Exit(1)
	}

	if all || *fig1 {
		rows, err := experiments.Fig1CPUAccuracy(120, *seed)
		if err != nil {
			fail("fig1", err)
		}
		fmt.Print(experiments.RenderFig1(rows))
		saveCSV("fig1_cpu_accuracy", experiments.CSVFig1(rows))
	}
	if all || *fig2 {
		rows, err := experiments.Fig2NetThroughput(volume, *seed)
		if err != nil {
			fail("fig2", err)
		}
		fmt.Print(experiments.RenderDist("Figure 2: network I/O throughput in the sending VM", "MBit/s", rows))
		saveCSV("fig2_net_throughput", experiments.CSVDist(rows))
		fmt.Println()
	}
	if all || *fig3 {
		rows, err := experiments.Fig3FileWriteThroughput(volume, *seed)
		if err != nil {
			fail("fig3", err)
		}
		fmt.Print(experiments.RenderDist("Figure 3: file I/O throughput (write) in the VM", "MB/s", rows))
		saveCSV("fig3_file_write", experiments.CSVDist(rows))
		fmt.Println()
	}
	if all || *table2 {
		cfg := experiments.TableIIConfig{
			TotalBytes: volume,
			Runs:       *runs,
			Platform:   cloudsim.KVMParavirt, // the paper's evaluation platform
			Seed:       *seed,
		}
		if *liveProf {
			ms, profiles, err := experiments.Calibrate(0)
			if err != nil {
				fail("live calibration", err)
			}
			fmt.Print(experiments.RenderCalibration(ms))
			fmt.Println("(Table II below uses the live-calibrated profiles)")
			cfg.Profiles = profiles
		}
		res, err := experiments.TableII(cfg)
		if err != nil {
			fail("table2", err)
		}
		fmt.Print(res.Render())
		saveCSV("table2_completion_times", res.CSVTableII())
	}
	if all || *fig4 {
		tr, err := experiments.Fig4Trace(volume, *seed)
		if err != nil {
			fail("fig4", err)
		}
		fmt.Print(tr.Render("Figure 4: DYNAMIC on HIGH data, no background traffic", experiments.LevelNames, 100))
		saveCSV("fig4_trace", experiments.CSVTrace(tr))
		fmt.Println()
	}
	if all || *fig5 {
		tr, err := experiments.Fig5Trace(volume, *seed)
		if err != nil {
			fail("fig5", err)
		}
		fmt.Print(tr.Render("Figure 5: DYNAMIC on LOW data, two background connections", experiments.LevelNames, 100))
		saveCSV("fig5_trace", experiments.CSVTrace(tr))
		fmt.Println()
	}
	if all || *fig6 {
		tr, err := experiments.Fig6Switch(volume, *seed)
		if err != nil {
			fail("fig6", err)
		}
		fmt.Print(tr.Render("Figure 6: HIGH/LOW alternating every 10 GB", experiments.LevelNames, 100))
		saveCSV("fig6_trace", experiments.CSVTrace(tr))
		fmt.Println()
	}
	if all || *ablations {
		a1, err := experiments.AblationAlpha(nil, volume, *seed)
		if err != nil {
			fail("ablation A1", err)
		}
		fmt.Print(experiments.RenderAblation("Ablation A1: tolerance band alpha (MODERATE, 2 conns)", a1))
		saveCSV("ablation_a1_alpha", experiments.CSVAblation(a1))
		fmt.Println()
		a2, err := experiments.AblationWindow(nil, volume, *seed)
		if err != nil {
			fail("ablation A2", err)
		}
		fmt.Print(experiments.RenderAblation("Ablation A2: decision window t (Fig 6 workload)", a2))
		saveCSV("ablation_a2_window", experiments.CSVAblation(a2))
		fmt.Println()
		a3, err := experiments.AblationBackoff(volume, *seed)
		if err != nil {
			fail("ablation A3", err)
		}
		fmt.Print(experiments.RenderAblation("Ablation A3: exponential backoff (HIGH, no load)", a3))
		saveCSV("ablation_a3_backoff", experiments.CSVAblation(a3))
		fmt.Println()
		a4, err := experiments.AblationBaselines(volume, *seed)
		if err != nil {
			fail("ablation A4", err)
		}
		fmt.Print(experiments.RenderBaselines(a4))
		saveCSV("ablation_a4_baselines", experiments.CSVBaselines(a4))
		fmt.Println()
		a5, err := experiments.FileChannel(volume, *seed)
		if err != nil {
			fail("ablation A5", err)
		}
		fmt.Print(experiments.RenderFileChannel(a5))
		saveCSV("ablation_a5_filechannel", experiments.CSVFileChannel(a5))
		fmt.Println()
		a6, err := experiments.AblationLadder(volume, *seed)
		if err != nil {
			fail("ablation A6", err)
		}
		fmt.Print(experiments.RenderLadder(a6))
		fmt.Println()
	}
	if all || *claims {
		cl, err := experiments.VerifyClaims(volume, *seed)
		if err != nil {
			fail("claims", err)
		}
		fmt.Print(experiments.RenderClaims(cl))
		fmt.Println()
		if !experiments.AllPass(cl) {
			exitCode = 1
		}
	}
	if all || *calibrate {
		ms, _, err := experiments.Calibrate(0)
		if err != nil {
			fail("calibrate", err)
		}
		fmt.Print(experiments.RenderCalibration(ms))
		saveCSV("codec_calibration", experiments.CSVCalibration(ms))
	}

	fmt.Println("--- end-of-run process metrics ---")
	fmt.Print(reg.RenderText())
	if exitCode != 0 {
		os.Exit(exitCode)
	}
}

// runSoak is the `-scenario soak` entry point: the repeatable
// soak/overload experiment of docs/scaling.md at expdriver scale — an
// in-process echo sink behind a bounded entry/exit tunnel pair, hammered by
// the seeded load generator. It returns the process exit code: non-zero on
// broken transfers, zero completions, or leaked goroutines after drain.
func runSoak(seed uint64) int {
	reg := obs.NewRegistry()
	block.PublishMetrics(reg.Scope("block"))

	baseline := runtime.NumGoroutine()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "soak: echo sink: %v\n", err)
		return 1
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				io.Copy(conn, conn)
				if tc, ok := conn.(*net.TCPConn); ok {
					tc.CloseWrite()
				}
			}()
		}
	}()

	const (
		workers  = 192
		maxConns = 48
	)
	tcfg := tunnel.Config{Static: true, StaticLevel: 1, ShutdownGrace: 5 * time.Second}
	exit, err := tunnel.ListenExit(context.Background(), "127.0.0.1:0", ln.Addr().String(), tcfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "soak: exit: %v\n", err)
		return 1
	}
	entryCfg := tcfg
	entryCfg.MaxConns = maxConns
	entryCfg.AcceptQueue = maxConns
	entryCfg.Obs = reg.Scope("tunnel")
	entry, err := tunnel.ListenEntry(context.Background(), "127.0.0.1:0", exit.Addr().String(), entryCfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "soak: entry: %v\n", err)
		return 1
	}

	fmt.Printf("Soak scenario: %d workers vs MaxConns=%d tunnel pair, 5 s, seed %d\n", workers, maxConns, seed)
	report, err := loadgen.Run(context.Background(), loadgen.Config{
		Addr:       entry.Addr().String(),
		Conns:      workers,
		Duration:   5 * time.Second,
		Seed:       seed,
		MinPayload: 2 << 10,
		MaxPayload: 32 << 10,
		Verify:     true,
		Obs:        reg.Scope("loadgen"),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "soak: %v\n", err)
		return 1
	}
	fmt.Println(report.String())

	entry.Close()
	exit.Close()
	ln.Close()
	leaked := 0
	deadline := time.Now().Add(3 * time.Second)
	for {
		leaked = runtime.NumGoroutine() - baseline
		if leaked <= 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	fmt.Println("--- end-of-run process metrics ---")
	fmt.Print(reg.RenderText())

	// Copy-accounting gate (docs/performance.md, "Zero-copy relay"): at
	// LIGHT the relay pays ~1 user-space copy per byte (the codec
	// transform); the pre-refactor staging loop paid ~2. Failing at 1.5
	// catches a reintroduced staging copy without flaking on small-block
	// noise.
	copyRatio := 0.0
	if m, ok := reg.Get("tunnel.relay.bytes_copied_per_byte_relayed").(*obs.FloatFuncMetric); ok {
		copyRatio = m.Value()
	}
	fmt.Printf("soak: bytes_copied_per_byte_relayed = %.3f\n", copyRatio)

	switch {
	case report.Completed == 0:
		fmt.Println("soak: FAIL: zero completed cycles")
		return 1
	case report.Failed > 0:
		fmt.Printf("soak: FAIL: %d broken transfers\n", report.Failed)
		return 1
	case leaked > 0:
		fmt.Printf("soak: FAIL: %d goroutine(s) leaked after drain\n", leaked)
		return 1
	case copyRatio >= 1.5:
		fmt.Printf("soak: FAIL: copy ratio %.3f — a relay staging copy is back\n", copyRatio)
		return 1
	}
	fmt.Println("soak: PASS")
	return 0
}
