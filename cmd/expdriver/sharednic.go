package main

import (
	"encoding/json"
	"fmt"
	"os"

	"adaptio/internal/cloudsim"
	"adaptio/internal/coord"
	"adaptio/internal/core"
	"adaptio/internal/corpus"
	"adaptio/internal/obs"
)

// runSharedNIC is the `-scenario sharednic` entry point: the
// contention-regression experiment of docs/coordination.md at CI scale. A
// fleet of streams (90% best-effort "silver" at weight 1, 10% priority
// "gold" at weight 2, heterogeneous CPU speeds and corpus kinds) shares one
// simulated Native-platform NIC twice with identical seeds: once with every
// stream running its own paper decider, once registered with a fleet
// coordinator budgeted at the link rate. It prints the two runs side by
// side, optionally writes a JSON metrics artifact for CI, and exits
// non-zero unless the coordinated fleet wins on both axes — strictly higher
// aggregate goodput AND strictly fewer level flaps.
func runSharedNIC(seed uint64, streams int, metricsOut string) int {
	const (
		nicMBps    = 111.0 // netTable[Native]: the paper's 1 Gbit/s link
		windows    = 240
		windowSecs = 2.0
		goldWeight = 2.0
	)
	if streams < 2 {
		fmt.Fprintln(os.Stderr, "sharednic: need at least 2 streams")
		return 2
	}
	gold := streams / 10
	if gold == 0 {
		gold = 1
	}
	silver := streams - gold

	fleet := func(mkScheme func(i int, weight float64, tenant string) cloudsim.Scheme) []cloudsim.FleetStream {
		out := make([]cloudsim.FleetStream, streams)
		for i := 0; i < streams; i++ {
			weight, tenant := 1.0, "silver"
			if i >= silver {
				weight, tenant = goldWeight, "gold"
			}
			cpu := 0.35 + 0.65*float64(i%13)/12
			kind := cloudsim.ConstantKind(corpus.Moderate)
			switch {
			case i%10 == 3:
				kind = cloudsim.ConstantKind(corpus.High)
			case i%10 == 7:
				kind = cloudsim.AlternatingKinds(int64(200+5*i)*1e6, corpus.Moderate, corpus.Low)
			}
			out[i] = cloudsim.FleetStream{
				Kind:      kind,
				Scheme:    mkScheme(i, weight, tenant),
				Weight:    weight,
				CPUFactor: cpu,
				Tenant:    tenant,
			}
		}
		return out
	}
	run := func(mkScheme func(i int, weight float64, tenant string) cloudsim.Scheme) (cloudsim.FleetResult, error) {
		return cloudsim.RunFleet(cloudsim.FleetConfig{
			NICMBps:       nicMBps,
			Windows:       windows,
			WindowSeconds: windowSecs,
			Profiles:      cloudsim.ReferenceProfiles(),
			Streams:       fleet(mkScheme),
			Seed:          seed,
			NICSigma:      0.08,
			CPUSigma:      0.03,
		})
	}

	fmt.Printf("Shared-NIC scenario: %d streams (%d silver w=1, %d gold w=%.0f) on a %.0f MB/s NIC, %d x %.0f s windows, seed %d\n",
		streams, silver, gold, goldWeight, nicMBps, windows, windowSecs, seed)

	solo, err := run(func(int, float64, string) cloudsim.Scheme {
		return core.MustNewDecider(core.Config{Levels: 4})
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sharednic: solo fleet: %v\n", err)
		return 1
	}

	reg := obs.NewRegistry()
	c, err := coord.New(coord.Config{
		BudgetBytesPerSec: nicMBps * 1e6,
		Levels:            4,
		Obs:               reg.Scope("coord"),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sharednic: coordinator: %v\n", err)
		return 1
	}
	var handles []*coord.Stream
	coordinated, err := run(func(i int, weight float64, tenant string) cloudsim.Scheme {
		s := c.Register(coord.StreamConfig{Weight: weight, Tenant: tenant})
		handles = append(handles, s)
		return s
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sharednic: coordinated fleet: %v\n", err)
		return 1
	}
	for _, h := range handles {
		h.Detach()
	}

	type tenantBytes struct {
		Gold   int64 `json:"gold_app_bytes"`
		Silver int64 `json:"silver_app_bytes"`
	}
	perTenant := func(res cloudsim.FleetResult) tenantBytes {
		var tb tenantBytes
		for _, ps := range res.PerStream {
			if ps.Tenant == "gold" {
				tb.Gold += ps.AppBytes
			} else {
				tb.Silver += ps.AppBytes
			}
		}
		return tb
	}
	soloTen, coordTen := perTenant(solo), perTenant(coordinated)

	row := func(name string, res cloudsim.FleetResult, tb tenantBytes) {
		fmt.Printf("  %-12s goodput %8.1f MB/s  wire %8.1f MB/s  switches %6d  flaps %6d  gold/stream %6.1f MB  silver/stream %6.1f MB\n",
			name,
			res.GoodputMBps(windowSecs),
			float64(res.WireBytes)/1e6/(windowSecs*float64(res.Windows)),
			res.Switches, res.Flaps,
			float64(tb.Gold)/float64(gold)/1e6,
			float64(tb.Silver)/float64(silver)/1e6)
	}
	row("solo", solo, soloTen)
	row("coordinated", coordinated, coordTen)

	goodputWin := coordinated.AppBytes > solo.AppBytes
	flapWin := coordinated.Flaps < solo.Flaps
	pass := goodputWin && flapWin

	if metricsOut != "" {
		type fleetJSON struct {
			AppBytes    int64   `json:"app_bytes"`
			WireBytes   int64   `json:"wire_bytes"`
			GoodputMBps float64 `json:"goodput_mbps"`
			Switches    int64   `json:"switches"`
			Flaps       int64   `json:"flaps"`
			tenantBytes
		}
		artifact := struct {
			Scenario    string    `json:"scenario"`
			Seed        uint64    `json:"seed"`
			Streams     int       `json:"streams"`
			Windows     int       `json:"windows"`
			NICMBps     float64   `json:"nic_mbps"`
			Solo        fleetJSON `json:"solo"`
			Coordinated fleetJSON `json:"coordinated"`
			Pass        bool      `json:"pass"`
		}{
			Scenario: "sharednic",
			Seed:     seed,
			Streams:  streams,
			Windows:  windows,
			NICMBps:  nicMBps,
			Solo: fleetJSON{
				AppBytes: solo.AppBytes, WireBytes: solo.WireBytes,
				GoodputMBps: solo.GoodputMBps(windowSecs),
				Switches:    int64(solo.Switches), Flaps: int64(solo.Flaps),
				tenantBytes: soloTen,
			},
			Coordinated: fleetJSON{
				AppBytes: coordinated.AppBytes, WireBytes: coordinated.WireBytes,
				GoodputMBps: coordinated.GoodputMBps(windowSecs),
				Switches:    int64(coordinated.Switches), Flaps: int64(coordinated.Flaps),
				tenantBytes: coordTen,
			},
			Pass: pass,
		}
		data, err := json.MarshalIndent(artifact, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "sharednic: marshal metrics: %v\n", err)
			return 1
		}
		if err := os.WriteFile(metricsOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "sharednic: write %s: %v\n", metricsOut, err)
			return 1
		}
		fmt.Printf("metrics artifact written to %s\n", metricsOut)
	}

	fmt.Println("--- end-of-run coordinator metrics ---")
	fmt.Print(reg.RenderText())

	switch {
	case !goodputWin:
		fmt.Printf("sharednic: FAIL: coordinated goodput %d bytes did not beat solo %d\n",
			coordinated.AppBytes, solo.AppBytes)
		return 1
	case !flapWin:
		fmt.Printf("sharednic: FAIL: coordinated flaps %d not below solo %d\n",
			coordinated.Flaps, solo.Flaps)
		return 1
	}
	fmt.Println("sharednic: PASS")
	return 0
}
