package main

import (
	"fmt"
	"os"
	"time"

	"adaptio/internal/benchfmt"
	"adaptio/internal/core"
	"adaptio/internal/experiments"
)

// runDeciderMatrix is the `-decider-matrix` entry point: the Table II
// completion-time grid under every registered decider policy plus the
// CheatStick sentinel, printed as the per-policy comparison table and
// optionally written as a benchfmt JSON artifact (-json-out) in the schema
// of the committed BENCH_decider.json baseline. The run is fully
// deterministic in -seed, so the artifact is byte-reproducible and
// cmd/benchdiff -mode decider can gate it against the baseline.
//
// The two-axis acceptance bound (docs/deciders.md) is enforced here too:
// each learned policy must stay within-or-better on completion time in
// every cell AND waste strictly fewer probes than AlgorithmOne over the
// grid. Exit codes: 0 bound holds, 1 a policy violates it, 2 run errors.
func runDeciderMatrix(seed uint64, jsonOut string) int {
	start := time.Now()
	res, err := experiments.DeciderMatrix(experiments.DeciderMatrixConfig{Seed: seed})
	if err != nil {
		fmt.Fprintf(os.Stderr, "expdriver: decider matrix: %v\n", err)
		return 2
	}
	fmt.Print(res.Render())
	fmt.Printf("  wall %v\n", time.Since(start).Round(time.Millisecond))

	code := 0
	for _, policy := range res.Policies {
		if policy == core.PolicyAlgorithmOne || policy == core.PolicyCheatStick {
			continue
		}
		violations := res.CheckBound(policy, core.PolicyAlgorithmOne, experiments.DefaultThroughputTolerance)
		for _, v := range violations {
			fmt.Printf("decider-matrix: FAIL: %s violates the %s axis: %s\n", v.Policy, v.Axis, v.Detail)
			code = 1
		}
		if len(violations) == 0 {
			p, w := res.Totals(policy)
			fmt.Printf("decider-matrix: %s holds the two-axis bound (%d probes, %d wasted)\n", policy, p, w)
		}
	}

	if jsonOut != "" {
		f := res.ToBenchFile("decider policy matrix: Table II per policy (cmd/expdriver -decider-matrix)", "current")
		if err := benchfmt.WriteFile(jsonOut, f); err != nil {
			fmt.Fprintf(os.Stderr, "expdriver: %v\n", err)
			return 2
		}
		fmt.Printf("  artifact written to %s\n", jsonOut)
	}
	return code
}
