package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"adaptio/internal/scenario"
)

// runScenario is the generic `-scenario <name|file>` entry point: it
// resolves a built-in scenario (scenario.Builtins) or a JSON scenario file,
// executes every variant on the faster-than-real-time fleet simulator,
// prints the variant table plus the claim checklist, optionally writes the
// deterministic JSON artifact, and enforces the wall-clock budget — the CI
// gate that the simulator stays orders of magnitude faster than the
// workloads it models. A non-empty decider overrides the scenario's
// level-selection policy for the adaptive variant (docs/deciders.md).
// Exit codes: 0 all claims pass within budget, 1 a claim or the budget
// failed (an empty claim set counts as a failure: a run that gates nothing
// must not pass CI), 2 usage/decode errors.
func runScenario(nameOrPath string, seed uint64, parallel int, rigName, decider, metricsOut string, maxWall time.Duration) int {
	rig, err := scenario.ParseRig(rigName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "expdriver: %v\n", err)
		return 2
	}
	sc, builtin, err := scenario.Resolve(nameOrPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "expdriver: %v\n", err)
		return 2
	}
	if sc.Seed == 0 {
		sc.Seed = seed
	}
	if decider != "" {
		sc.Decider = decider
		if err := sc.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "expdriver: %v\n", err)
			return 2
		}
	}

	start := time.Now()
	res, err := scenario.Run(sc, scenario.Options{Parallel: parallel, Rig: rig})
	if err != nil {
		fmt.Fprintf(os.Stderr, "expdriver: scenario %s: %v\n", sc.Name, err)
		return 2
	}
	wall := time.Since(start)

	kind := "file"
	if builtin {
		kind = "built-in"
	}
	fmt.Printf("Scenario %q (%s): %d streams, %d x %.0f s windows = %s simulated, seed %d",
		res.Scenario, kind, res.Streams, res.Windows, res.WindowSeconds,
		(time.Duration(res.SimulatedSeconds) * time.Second).String(), res.Seed)
	if res.Decider != "" {
		fmt.Printf(", decider %q", res.Decider)
	}
	if rig != scenario.RigNone {
		fmt.Printf(", RIG %q (sentinel run: claims are EXPECTED to fail)", rig)
	}
	fmt.Println()
	if sc.Description != "" {
		fmt.Printf("  %s\n", sc.Description)
	}

	fmt.Printf("  %-14s %12s %12s %10s %8s %8s %12s\n",
		"variant", "goodput MB/s", "wire MB/s", "switches", "flaps", "max sw", "app GB")
	for _, v := range res.Variants {
		wireMBps := 0.0
		if res.SimulatedSeconds > 0 {
			wireMBps = float64(v.WireBytes) / 1e6 / res.SimulatedSeconds
		}
		fmt.Printf("  %-14s %12.2f %12.2f %10d %8d %8d %12.2f\n",
			v.Name, v.GoodputMBps, wireMBps, v.Switches, v.Flaps, v.MaxStreamSwitches,
			float64(v.AppBytes)/1e9)
	}

	for _, c := range res.Claims {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
		}
		fmt.Printf("  claim %-32s %s  (%s)\n", c.Name, status, c.Detail)
	}

	speedup := 0.0
	if wall > 0 {
		speedup = res.SimulatedSeconds / wall.Seconds()
	}
	fmt.Printf("  wall %v for %s simulated: %.0fx faster than real time\n",
		wall.Round(time.Millisecond), (time.Duration(res.SimulatedSeconds) * time.Second).String(), speedup)

	if metricsOut != "" {
		data, err := res.MarshalArtifact()
		if err != nil {
			fmt.Fprintf(os.Stderr, "expdriver: %v\n", err)
			return 2
		}
		if err := os.WriteFile(metricsOut, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "expdriver: write %s: %v\n", metricsOut, err)
			return 2
		}
		fmt.Printf("  artifact written to %s\n", metricsOut)
	}

	code := 0
	if len(res.Claims) == 0 {
		// An empty claim set used to print "(no claims registered)" and
		// exit 0 — so a misnamed builtin or a claimless scenario file
		// sailed through CI having verified nothing. Gating nothing is a
		// failure, not a pass.
		fmt.Printf("scenario %s: FAIL: no claims registered — the run verified nothing\n", res.Scenario)
		code = 1
	}
	if !res.ClaimsPass() {
		var failed []string
		for _, c := range res.Claims {
			if !c.Pass {
				failed = append(failed, c.Name)
			}
		}
		fmt.Printf("scenario %s: FAIL: claims not met: %s\n", res.Scenario, strings.Join(failed, ", "))
		code = 1
	}
	if maxWall > 0 && wall > maxWall {
		fmt.Printf("scenario %s: FAIL: wall clock %v exceeded the -max-wall budget %v\n",
			res.Scenario, wall.Round(time.Millisecond), maxWall)
		code = 1
	}
	if code == 0 {
		fmt.Printf("scenario %s: PASS\n", res.Scenario)
	}
	return code
}
