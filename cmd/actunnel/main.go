// Command actunnel runs an adaptive-compression TCP tunnel endpoint. A pair
// of actunnel processes transparently compresses any TCP application's
// traffic with the paper's rate-based scheme — the "infrastructure
// agnostic" deployment the paper argues for: no hypervisor, kernel or
// application changes, just a relay the cloud customer controls.
//
//	# on the remote VM (exit): forward decompressed traffic to the service
//	actunnel -mode exit -listen :9000 -target 127.0.0.1:5432
//
//	# locally (entry): applications connect here with plain TCP
//	actunnel -mode entry -listen 127.0.0.1:5432 -target remote-vm:9000
//
// Each connection direction adapts its compression level independently from
// its observed application data rate.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"adaptio"
	"adaptio/internal/block"
	"adaptio/internal/compress/probe"
	"adaptio/internal/coord"
	"adaptio/internal/core"
	"adaptio/internal/obs"
	"adaptio/internal/tunnel"
)

func main() {
	var (
		mode        = flag.String("mode", "", "entry (plain in, compressed out) or exit (compressed in, plain out)")
		listen      = flag.String("listen", "", "address to listen on")
		target      = flag.String("target", "", "address to forward to (exit endpoint or final service)")
		window      = flag.Duration("window", 2*time.Second, "decision window t")
		alpha       = flag.Float64("alpha", adaptio.DefaultAlpha, "tolerance band alpha")
		static      = flag.Int("static", adaptio.Adaptive, "static level 0..3, or -1 for adaptive")
		decider     = flag.String("decider", "", "level-selection policy for adaptive mode: algone (default), bandit, or ewma")
		deciderSeed = flag.Uint64("decider-seed", 0, "seed for stochastic -decider policies")
		quiet       = flag.Bool("q", false, "suppress per-connection statistics")
		noProbe     = flag.Bool("no-probe", false, "disable the entropy pre-probe and run every block through the codec, even ones judged incompressible")

		passthrough = flag.Bool("passthrough", false, "relay raw bytes with no framing or compression (both endpoints must agree; -static/-window/-alpha/-coord do not apply)")
		flushIvl    = flag.Duration("flush-interval", 0, "max time a partial block may wait for more bytes before being framed (0 = default 5ms, negative = only flush full blocks)")

		idleTimeout = flag.Duration("idle-timeout", 0, "tear down a connection direction after this long without traffic (0 = never)")
		dialRetries = flag.Int("dial-retries", 0, "extra dial attempts after the first fails, with exponential backoff")
		dialBackoff = flag.Duration("dial-backoff", tunnel.DefaultDialBackoff, "base backoff between dial attempts")
		grace       = flag.Duration("grace", 0, "drain time granted to active connections on shutdown (0 = close immediately)")
		maxConns    = flag.Int("max-conns", 0, "serve at most this many connections concurrently, shedding excess (0 = unlimited)")
		acceptQueue = flag.Int("accept-queue", 0, "connections beyond -max-conns that may wait for a slot before shedding (0 = shed immediately)")
		metricsAddr = flag.String("metrics-addr", "", "serve the JSON metrics snapshot over HTTP on this address (empty = off)")

		coordOn     = flag.Bool("coord", false, "coordinate compression levels across this endpoint's connections against a shared link budget instead of letting each adapt alone")
		coordBudget = flag.Float64("coord-budget", coord.DefaultBudgetBytesPerSec/1e6, "shared link budget for -coord, in MB/s of wire bytes")
		coordWeight = flag.Float64("coord-weight", 1, "fair-share weight of this endpoint's streams under -coord")
		coordTenant = flag.String("coord-tenant", "", "tenant label for this endpoint's streams under -coord")
	)
	flag.Parse()
	if *listen == "" || *target == "" || (*mode != "entry" && *mode != "exit") {
		flag.Usage()
		os.Exit(2)
	}

	reg := obs.NewRegistry()
	block.PublishMetrics(reg.Scope("block"))
	cfg := tunnel.Config{
		Window:        *window,
		Alpha:         *alpha,
		Logf:          log.Printf,
		IdleTimeout:   *idleTimeout,
		DialRetries:   *dialRetries,
		DialBackoff:   *dialBackoff,
		ShutdownGrace: *grace,
		MaxConns:      *maxConns,
		AcceptQueue:   *acceptQueue,
		Passthrough:   *passthrough,
		FlushInterval: *flushIvl,
		Decider:       *decider,
		DeciderSeed:   *deciderSeed,
		Obs:           reg.Scope("tunnel"),
	}
	if *decider != "" && !core.ValidPolicy(*decider) {
		log.Fatalf("actunnel: unknown -decider %q (want one of %v)", *decider, core.PolicyNames())
	}
	if *decider != "" && *static != adaptio.Adaptive {
		log.Fatalf("actunnel: -decider is incompatible with -static (a pinned level leaves nothing to decide)")
	}
	if *metricsAddr != "" {
		reg.PublishExpvar("adaptio")
		go func() {
			if err := obs.ListenAndServe(*metricsAddr, reg); err != nil {
				log.Printf("actunnel: metrics server: %v", err)
			}
		}()
	}
	if *static != adaptio.Adaptive {
		cfg.Static = true
		cfg.StaticLevel = *static
	}
	if *noProbe {
		pr := probe.Disabled()
		cfg.Probe = &pr
	}
	if *coordOn {
		if cfg.Static {
			log.Fatalf("actunnel: -coord is incompatible with -static (a pinned level leaves nothing to coordinate)")
		}
		if *passthrough {
			log.Fatalf("actunnel: -coord is incompatible with -passthrough (an unframed relay has no levels to coordinate)")
		}
		c, err := coord.New(coord.Config{
			BudgetBytesPerSec: *coordBudget * 1e6,
			Levels:            len(adaptio.DefaultLadder()),
			Alpha:             *alpha,
			Obs:               reg.Scope("coord"),
		})
		if err != nil {
			log.Fatalf("actunnel: %v", err)
		}
		cfg.Coord = c
		cfg.CoordWeight = *coordWeight
		cfg.CoordTenant = *coordTenant
	}
	if !*quiet {
		names := adaptio.DefaultLadder().Names()
		cfg.OnDone = func(s tunnel.ConnStats) {
			ratio := 1.0
			if s.Stats.AppBytes > 0 {
				ratio = float64(s.Stats.WireBytes) / float64(s.Stats.AppBytes)
			}
			line := fmt.Sprintf("%s: %d app B -> %d wire B (ratio %.3f), switches %d, levels",
				s.Direction, s.Stats.AppBytes, s.Stats.WireBytes, ratio, s.Stats.LevelSwitches)
			for lvl, blocks := range s.Stats.BlocksPerLevel {
				if blocks > 0 {
					line += fmt.Sprintf(" %s=%d", names[lvl], blocks)
				}
			}
			log.Print(line)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var (
		ep  *tunnel.Endpoint
		err error
	)
	if *mode == "entry" {
		ep, err = tunnel.ListenEntry(ctx, *listen, *target, cfg)
	} else {
		ep, err = tunnel.ListenExit(ctx, *listen, *target, cfg)
	}
	if err != nil {
		log.Fatalf("actunnel: %v", err)
	}
	log.Printf("actunnel %s endpoint on %s -> %s", *mode, ep.Addr(), *target)
	<-ctx.Done()
	ep.Close()
}
