// Command acsend streams data over TCP through the adaptive compression
// layer — the sender half of the paper's sample job (a Nephele sender task
// feeding a receiver over a network channel). Pair it with acrecv.
//
// Usage:
//
//	acsend -addr host:port [-gb 1] [-kind HIGH|MODERATE|LOW|SWITCH]
//	       [-static -1|0..3] [-window 2s] [-alpha 0.2] [-v]
//
// -static -1 (default) selects the adaptive DYNAMIC scheme; 0..3 pin the
// paper's NO/LIGHT/MEDIUM/HEAVY levels. -kind SWITCH alternates HIGH and
// LOW every 256 MB (a scaled-down Figure 6 workload). With -v every decision
// window is logged: time, application rate, wire rate, level.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"time"

	"adaptio"
	"adaptio/internal/block"
	"adaptio/internal/corpus"
	"adaptio/internal/obs"
)

func main() {
	var (
		addr   = flag.String("addr", "127.0.0.1:9911", "receiver address")
		gb     = flag.Float64("gb", 1, "data volume in GB (decimal)")
		kind   = flag.String("kind", "HIGH", "data compressibility: HIGH, MODERATE, LOW or SWITCH")
		static = flag.Int("static", adaptio.Adaptive, "static level 0..3, or -1 for adaptive")
		window = flag.Duration("window", 2*time.Second, "decision window t")
		alpha  = flag.Float64("alpha", adaptio.DefaultAlpha, "tolerance band alpha")
		verb   = flag.Bool("v", false, "log every decision window")

		metricsAddr = flag.String("metrics-addr", "", "serve the JSON metrics snapshot over HTTP on this address (empty = off)")
	)
	flag.Parse()

	reg := obs.NewRegistry()
	block.PublishMetrics(reg.Scope("block"))
	if *metricsAddr != "" {
		reg.PublishExpvar("adaptio")
		go func() {
			if err := obs.ListenAndServe(*metricsAddr, reg); err != nil {
				fmt.Fprintf(os.Stderr, "acsend: metrics server: %v\n", err)
			}
		}()
	}

	src, err := dataSource(*kind)
	if err != nil {
		fatal(err)
	}
	conn, err := net.Dial("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	defer conn.Close()

	cfg := adaptio.WriterConfig{
		Window: *window,
		Alpha:  *alpha,
		Obs:    reg.Scope("stream").Scope("writer"),
	}
	if *static != adaptio.Adaptive {
		cfg.Static = true
		cfg.StaticLevel = *static
	}
	names := adaptio.DefaultLadder().Names()
	if *verb {
		cfg.OnWindow = func(ws adaptio.WindowStat) {
			fmt.Printf("t=%6.1fs app=%8.2f MB/s wire=%8.2f MB/s level=%s -> %s\n",
				time.Since(start).Seconds(),
				ws.Rate/1e6,
				float64(ws.WireBytes)/ws.Elapsed.Seconds()/1e6,
				names[ws.Level], names[ws.NextLevel])
		}
	}
	w, err := adaptio.NewWriter(conn, cfg)
	if err != nil {
		fatal(err)
	}

	total := int64(*gb * 1e9)
	start = time.Now()
	if _, err := io.CopyN(w, src, total); err != nil {
		fatal(err)
	}
	if err := w.Close(); err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	st := w.Stats()
	fmt.Printf("sent %.2f GB app / %.2f GB wire in %.1f s (%.1f MB/s app, ratio %.3f, %d level switches)\n",
		float64(st.AppBytes)/1e9, float64(st.WireBytes)/1e9, elapsed.Seconds(),
		float64(st.AppBytes)/1e6/elapsed.Seconds(),
		float64(st.WireBytes)/float64(st.AppBytes), st.LevelSwitches)
	for lvl, blocks := range st.BlocksPerLevel {
		if blocks > 0 {
			fmt.Printf("  %-7s %d blocks\n", names[lvl], blocks)
		}
	}
}

var start time.Time

func dataSource(kind string) (io.Reader, error) {
	switch strings.ToUpper(kind) {
	case "HIGH":
		return corpus.NewFileReader(corpus.High, 1), nil
	case "MODERATE":
		return corpus.NewFileReader(corpus.Moderate, 1), nil
	case "LOW":
		return corpus.NewFileReader(corpus.Low, 1), nil
	case "SWITCH":
		return corpus.NewAlternatingReader([]corpus.Kind{corpus.High, corpus.Low}, 256<<20, 1), nil
	default:
		return nil, fmt.Errorf("unknown kind %q", kind)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "acsend: %v\n", err)
	os.Exit(1)
}
