// Command acrecv receives an adaptively compressed TCP stream (from acsend)
// and reports the decompressed volume and application-level throughput.
// The receiver is entirely self-configuring: every block carries its codec
// ID, so level switches on the sender need no coordination.
//
// Usage:
//
//	acrecv [-listen host:port] [-once]
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"time"

	"adaptio"
)

func main() {
	var (
		listen = flag.String("listen", "127.0.0.1:9911", "listen address")
		once   = flag.Bool("once", false, "exit after one connection")
	)
	flag.Parse()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("acrecv: listening on %s\n", ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			fatal(err)
		}
		handle(conn)
		if *once {
			return
		}
	}
}

func handle(conn net.Conn) {
	defer conn.Close()
	r, err := adaptio.NewReader(conn)
	if err != nil {
		fmt.Fprintf(os.Stderr, "acrecv: %v\n", err)
		return
	}
	start := time.Now()
	n, err := io.Copy(io.Discard, r)
	elapsed := time.Since(start)
	if err != nil {
		fmt.Fprintf(os.Stderr, "acrecv: stream error after %d bytes: %v\n", n, err)
		return
	}
	raw, wire, blocks := r.Counters()
	fmt.Printf("received %.2f GB app / %.2f GB wire in %.1f s (%.1f MB/s app, %d blocks)\n",
		float64(raw)/1e9, float64(wire)/1e9, elapsed.Seconds(), float64(n)/1e6/elapsed.Seconds(), blocks)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "acrecv: %v\n", err)
	os.Exit(1)
}
