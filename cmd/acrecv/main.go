// Command acrecv receives an adaptively compressed TCP stream (from acsend)
// and reports the decompressed volume and application-level throughput.
// The receiver is entirely self-configuring: every block carries its codec
// ID, so level switches on the sender need no coordination.
//
// Usage:
//
//	acrecv [-listen host:port] [-once] [-metrics-addr host:port]
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"time"

	"adaptio"
	"adaptio/internal/block"
	"adaptio/internal/obs"
)

// readerObs accumulates decode-side totals across connections for the
// -metrics-addr snapshot ("stream.reader.*").
type readerObs struct {
	appBytes  *obs.Counter
	wireBytes *obs.Counter
	blocks    *obs.Counter
	conns     *obs.Counter
}

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:9911", "listen address")
		once        = flag.Bool("once", false, "exit after one connection")
		metricsAddr = flag.String("metrics-addr", "", "serve the JSON metrics snapshot over HTTP on this address (empty = off)")
	)
	flag.Parse()

	reg := obs.NewRegistry()
	block.PublishMetrics(reg.Scope("block"))
	rs := reg.Scope("stream").Scope("reader")
	ro := &readerObs{
		appBytes:  rs.Counter("app_bytes"),
		wireBytes: rs.Counter("wire_bytes"),
		blocks:    rs.Counter("blocks"),
		conns:     rs.Counter("conns"),
	}
	if *metricsAddr != "" {
		reg.PublishExpvar("adaptio")
		go func() {
			if err := obs.ListenAndServe(*metricsAddr, reg); err != nil {
				fmt.Fprintf(os.Stderr, "acrecv: metrics server: %v\n", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("acrecv: listening on %s\n", ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			fatal(err)
		}
		handle(conn, ro)
		if *once {
			return
		}
	}
}

func handle(conn net.Conn, ro *readerObs) {
	defer conn.Close()
	ro.conns.Inc()
	r, err := adaptio.NewReader(conn)
	if err != nil {
		fmt.Fprintf(os.Stderr, "acrecv: %v\n", err)
		return
	}
	start := time.Now()
	n, err := io.Copy(io.Discard, r)
	elapsed := time.Since(start)
	raw, wire, blocks := r.Counters()
	ro.appBytes.Add(raw)
	ro.wireBytes.Add(wire)
	ro.blocks.Add(blocks)
	if err != nil {
		fmt.Fprintf(os.Stderr, "acrecv: stream error after %d bytes: %v\n", n, err)
		return
	}
	fmt.Printf("received %.2f GB app / %.2f GB wire in %.1f s (%.1f MB/s app, %d blocks)\n",
		float64(raw)/1e9, float64(wire)/1e9, elapsed.Seconds(), float64(n)/1e6/elapsed.Seconds(), blocks)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "acrecv: %v\n", err)
	os.Exit(1)
}
