// Command acpipe is an adaptive-compression pipe filter, the gzip-shaped
// face of the library: it compresses stdin to stdout (or decompresses with
// -d) using the rate-based adaptive scheme. Because the decision input is
// the application data rate, acpipe automatically compresses harder when
// the downstream pipe is slow and backs off to plain copying when the pipe
// is fast — per the paper, with zero configuration.
//
// Usage:
//
//	tar c /data | acpipe | ssh host 'acpipe -d | tar x'
//	acpipe [-d] [-static -1|0..3] [-window 2s] [-alpha 0.2] [-stats]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"adaptio"
)

func main() {
	var (
		dec      = flag.Bool("d", false, "decompress")
		static   = flag.Int("static", adaptio.Adaptive, "static level 0..3, or -1 for adaptive")
		window   = flag.Duration("window", 2*time.Second, "decision window t")
		alpha    = flag.Float64("alpha", adaptio.DefaultAlpha, "tolerance band alpha")
		parallel = flag.Int("p", 1, "compress blocks on this many parallel workers")
		stats    = flag.Bool("stats", false, "print stream statistics to stderr on completion")
	)
	flag.Parse()

	if *dec {
		if err := decompress(os.Stdin, os.Stdout, *parallel); err != nil {
			fatal(err)
		}
		return
	}
	if err := compressStream(os.Stdin, os.Stdout, *static, *window, *alpha, *parallel, *stats); err != nil {
		fatal(err)
	}
}

func compressStream(in io.Reader, out io.Writer, static int, window time.Duration, alpha float64, parallel int, stats bool) error {
	cfg := adaptio.WriterConfig{Window: window, Alpha: alpha, Parallelism: parallel}
	if static != adaptio.Adaptive {
		cfg.Static = true
		cfg.StaticLevel = static
	}
	w, err := adaptio.NewWriter(out, cfg)
	if err != nil {
		return err
	}
	if _, err := io.Copy(w, in); err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	if stats {
		st := w.Stats()
		names := adaptio.DefaultLadder().Names()
		fmt.Fprintf(os.Stderr, "acpipe: %d app bytes -> %d wire bytes (ratio %.3f), %d blocks, %d switches\n",
			st.AppBytes, st.WireBytes, float64(st.WireBytes)/float64(st.AppBytes), st.Blocks, st.LevelSwitches)
		for lvl, blocks := range st.BlocksPerLevel {
			if blocks > 0 {
				fmt.Fprintf(os.Stderr, "acpipe:   %-7s %d blocks\n", names[lvl], blocks)
			}
		}
	}
	return nil
}

func decompress(in io.Reader, out io.Writer, parallel int) error {
	if parallel > 1 {
		r, err := adaptio.NewParallelReader(in, parallel)
		if err != nil {
			return err
		}
		defer r.Close()
		_, err = io.Copy(out, r)
		return err
	}
	r, err := adaptio.NewReader(in)
	if err != nil {
		return err
	}
	_, err = io.Copy(out, r)
	return err
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "acpipe: %v\n", err)
	os.Exit(1)
}
