// Command realbench runs the real-bytes Table II analogue: the paper's
// sweep (data compressibility x wire bandwidth x scheme) with the actual
// corpus generators, the actual codecs, the production stream layer and a
// real, rate-limited TCP loopback connection. Where cmd/expdriver's Table II
// answers "does the algorithm behave like the paper's on the paper's
// hardware model", realbench answers "does the shipped code deliver the
// paper's effect on *this* machine".
//
// Usage:
//
//	realbench [-mb 24] [-wires 80,11] [-window 50ms] [-json-out cells.json]
//
// -json-out additionally writes every cell's application-level MB/s in the
// BENCH_throughput.json schema (internal/benchfmt), so soak and nightly
// artifacts are directly diffable against the committed throughput
// baseline with cmd/benchdiff or plain git diff.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"adaptio/internal/benchfmt"
	"adaptio/internal/experiments"
)

func main() {
	var (
		mb      = flag.Int64("mb", 24, "volume per cell in MiB")
		wires   = flag.String("wires", "80,11", "comma-separated wire rates in MB/s")
		window  = flag.Duration("window", 50*time.Millisecond, "decision window t")
		jsonOut = flag.String("json-out", "", "also write cells as a benchfmt JSON artifact to this path")
	)
	flag.Parse()

	var rates []float64
	for _, f := range strings.Split(*wires, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "realbench: bad wire rate %q\n", f)
			os.Exit(1)
		}
		rates = append(rates, v)
	}
	cells, err := experiments.RealTableII(experiments.RealTableIIConfig{
		VolumeBytes: *mb << 20,
		WireMBps:    rates,
		Window:      *window,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "realbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(experiments.RenderRealTableII(cells))
	if *jsonOut == "" {
		return
	}
	art := &benchfmt.File{
		Description: "realbench Table II cells: application-level MB/s per (corpus, wire rate, scheme) over a real rate-limited loopback",
		Go:          runtime.Version(),
	}
	for _, c := range cells {
		name := fmt.Sprintf("RealTableII/%s/wire%g/%s", c.Kind, c.WireMBps, c.Scheme)
		art.Add(name, "current", benchfmt.Measurement{
			MBPerS:  c.AppMBps,
			NsPerOp: c.Seconds * 1e9,
		})
	}
	if err := benchfmt.WriteFile(*jsonOut, art); err != nil {
		fmt.Fprintf(os.Stderr, "realbench: %v\n", err)
		os.Exit(1)
	}
}
