// Command acload is the tunnel's soak and overload harness: a seeded,
// deterministic load generator (internal/loadgen) that ramps N concurrent
// client connections through an adaptive-compression tunnel pair and
// reports throughput, connection-cycle latency percentiles, shed counts,
// and peak goroutine/heap figures alongside the full obs metrics snapshot.
//
// By default it is self-contained — it starts an in-process echo sink plus
// an exit and an entry endpoint (with the configured admission limits) and
// hammers the entry:
//
//	acload -conns 256 -dur 60s -max-conns 128 -metrics-out soak.json
//
// Point it at an externally running entry (whose exit must lead to an echo
// service) with -addr:
//
//	acload -addr 127.0.0.1:5432 -conns 64 -dur 30s
//
// Exit status is non-zero when cycles failed mid-transfer (shedding is not
// a failure — it is the overload behaviour under test), when nothing
// completed, or when tunnel goroutines leak past the drain.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"runtime"
	"time"

	"adaptio"
	"adaptio/internal/block"
	"adaptio/internal/core"
	"adaptio/internal/corpus"
	"adaptio/internal/loadgen"
	"adaptio/internal/obs"
	"adaptio/internal/trace"
	"adaptio/internal/tunnel"
)

func main() {
	var (
		addr  = flag.String("addr", "", "external tunnel entry to load (empty = self-contained: in-process echo + exit + entry)")
		conns = flag.Int("conns", 64, "concurrent client workers")
		dur   = flag.Duration("dur", 10*time.Second, "run duration (0 = until -ops or interrupt)")
		ops   = flag.Int64("ops", 0, "total connection-cycle budget (0 = unbounded)")
		seed  = flag.Uint64("seed", 2011, "seed fixing every worker's operation plan")

		mixSpec  = flag.String("mix", "", "payload mix, e.g. 'high,moderate,low' or 'high=3,low=1' (empty = all three equally)")
		minSize  = flag.Int("min-size", 4<<10, "minimum payload bytes per cycle")
		maxSize  = flag.Int("max-size", 64<<10, "maximum payload bytes per cycle (sizes are log-uniform)")
		thinkMin = flag.Duration("think-min", 0, "minimum think time between a worker's cycles")
		thinkMax = flag.Duration("think-max", 0, "maximum think time between a worker's cycles")
		verify   = flag.Bool("verify", true, "verify echoed bytes match the sent payload")

		maxConns    = flag.Int("max-conns", 128, "entry MaxConns: concurrently served connections before queueing/shedding (0 = unlimited)")
		acceptQueue = flag.Int("accept-queue", 128, "entry AcceptQueue: waiting connections beyond -max-conns before shedding")
		grace       = flag.Duration("grace", 5*time.Second, "entry/exit drain grace on shutdown")
		window      = flag.Duration("window", 2*time.Second, "decision window t")
		alpha       = flag.Float64("alpha", adaptio.DefaultAlpha, "tolerance band alpha")
		static      = flag.Int("static", 1, "static compression level 0..3, or -1 for adaptive (default LIGHT: soak stresses connections, not the controller)")
		decider     = flag.String("decider", "", "level-selection policy when -static -1: algone (default), bandit, or ewma")
		deciderSeed = flag.Uint64("decider-seed", 0, "seed for stochastic -decider policies")

		metricsAddr = flag.String("metrics-addr", "", "serve the live JSON metrics snapshot over HTTP during the run")
		metricsOut  = flag.String("metrics-out", "", "write the final {report, metrics} JSON to this file (CI artifact)")
		traceOut    = flag.String("trace-out", "", "record completed-cycle bytes per decision window to this JSON trace file (replayable via expdriver -scenario with \"trace\")")
		minMBps     = flag.Float64("min-mbps", 0, "fail the run when aggregate application throughput lands below this many MB/s (0 = no gate)")
		quiet       = flag.Bool("q", false, "suppress per-cycle error logging")
	)
	flag.Parse()

	mix, err := corpus.ParseMix(*mixSpec)
	if err != nil {
		log.Fatalf("acload: %v", err)
	}
	if *decider != "" && !core.ValidPolicy(*decider) {
		log.Fatalf("acload: unknown -decider %q (want one of %v)", *decider, core.PolicyNames())
	}
	if *decider != "" && *static != adaptio.Adaptive {
		log.Fatalf("acload: -decider requires -static %d (a pinned level leaves nothing to decide)", adaptio.Adaptive)
	}
	if *decider != "" && *addr != "" {
		log.Fatalf("acload: -decider only applies to the self-contained tunnel pair, not an external -addr entry")
	}

	reg := obs.NewRegistry()
	block.PublishMetrics(reg.Scope("block"))
	if *metricsAddr != "" {
		go func() {
			if err := obs.ListenAndServe(*metricsAddr, reg); err != nil {
				log.Printf("acload: metrics server: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Baseline for the post-drain leak check: everything started after
	// this point (echo sink, endpoints, workers) must be gone — modulo the
	// sink's accept goroutine — once the run drains.
	baselineGoroutines := runtime.NumGoroutine()

	target := *addr
	var endpoints []*tunnel.Endpoint
	if target == "" {
		tcfg := tunnel.Config{
			Window:        *window,
			Alpha:         *alpha,
			ShutdownGrace: *grace,
			Decider:       *decider,
			DeciderSeed:   *deciderSeed,
			Logf:          nil,
		}
		if *static != adaptio.Adaptive {
			tcfg.Static = true
			tcfg.StaticLevel = *static
		}
		echoAddr, err := startEcho()
		if err != nil {
			log.Fatalf("acload: echo sink: %v", err)
		}
		exitCfg := tcfg
		exit, err := tunnel.ListenExit(context.Background(), "127.0.0.1:0", echoAddr, exitCfg)
		if err != nil {
			log.Fatalf("acload: exit: %v", err)
		}
		entryCfg := tcfg
		entryCfg.MaxConns = *maxConns
		entryCfg.AcceptQueue = *acceptQueue
		entryCfg.Obs = reg.Scope("tunnel")
		entry, err := tunnel.ListenEntry(context.Background(), "127.0.0.1:0", exit.Addr().String(), entryCfg)
		if err != nil {
			log.Fatalf("acload: entry: %v", err)
		}
		endpoints = []*tunnel.Endpoint{entry, exit}
		target = entry.Addr().String()
		log.Printf("acload: self-contained tunnel pair up (entry %s, max-conns %d, queue %d)", target, *maxConns, *acceptQueue)
	}

	lcfg := loadgen.Config{
		Addr:       target,
		Conns:      *conns,
		Ops:        *ops,
		Duration:   *dur,
		Seed:       *seed,
		Mix:        mix,
		MinPayload: *minSize,
		MaxPayload: *maxSize,
		MinThink:   *thinkMin,
		MaxThink:   *thinkMax,
		Verify:     *verify,
		Obs:        reg.Scope("loadgen"),
	}
	var recorder *trace.Recorder
	if *traceOut != "" {
		recorder = trace.NewRecorder(window.Seconds())
		lcfg.Recorder = recorder
	}
	if !*quiet {
		lcfg.Logf = log.Printf
	}
	log.Printf("acload: ramping %d workers against %s for %v (seed %d)", *conns, target, *dur, *seed)
	report, err := loadgen.Run(ctx, lcfg)
	if err != nil {
		log.Fatalf("acload: %v", err)
	}
	fmt.Println(report.String())

	if recorder != nil {
		wt := recorder.Snapshot()
		if len(wt.Windows) == 0 {
			log.Printf("acload: trace-out: no completed cycles to record, skipping %s", *traceOut)
		} else if err := wt.Save(*traceOut); err != nil {
			log.Fatalf("acload: %v", err)
		} else {
			log.Printf("acload: wrote %d-window trace (%d bytes of payload) to %s",
				len(wt.Windows), wt.TotalAppBytes(), *traceOut)
		}
	}

	// Drain the in-process endpoints, then verify their goroutines are
	// gone: the soak's leak check.
	leaked := 0
	if len(endpoints) > 0 {
		for _, ep := range endpoints {
			ep.Close()
		}
		leaked = residualGoroutines(baselineGoroutines)
		printTunnelCounters(reg)
		if leaked > 0 {
			fmt.Printf("LEAK: %d goroutine(s) above the pre-run baseline after drain\n", leaked)
		} else {
			fmt.Println("drain: zero goroutines leaked")
		}
	}

	if *metricsOut != "" {
		artifact := struct {
			Report         loadgen.Report  `json:"report"`
			Leaked         int             `json:"leaked_goroutines"`
			ThroughputMBps float64         `json:"throughput_mbps"`
			MinMBps        float64         `json:"min_mbps"`
			Metrics        json.RawMessage `json:"metrics"`
		}{report, leaked, report.ThroughputMBps(), *minMBps, json.RawMessage(reg.Snapshot())}
		data, err := json.MarshalIndent(artifact, "", "  ")
		if err != nil {
			log.Fatalf("acload: marshal artifact: %v", err)
		}
		if err := os.WriteFile(*metricsOut, data, 0o644); err != nil {
			log.Fatalf("acload: write %s: %v", *metricsOut, err)
		}
		log.Printf("acload: wrote metrics artifact to %s", *metricsOut)
	}

	switch {
	case report.Completed == 0:
		log.Fatal("acload: FAIL: zero completed cycles")
	case report.Failed > 0:
		log.Fatalf("acload: FAIL: %d cycles broke mid-transfer", report.Failed)
	case leaked > 0:
		log.Fatalf("acload: FAIL: %d goroutines leaked after drain", leaked)
	case *minMBps > 0 && report.ThroughputMBps() < *minMBps:
		log.Fatalf("acload: FAIL: aggregate throughput %.2f MB/s below the -min-mbps %.2f floor",
			report.ThroughputMBps(), *minMBps)
	}
}

// startEcho runs the in-process echo sink.
func startEcho() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				io.Copy(conn, conn)
				if tc, ok := conn.(*net.TCPConn); ok {
					tc.CloseWrite()
				}
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// residualGoroutines polls for up to 3 s while teardown settles and returns
// how many goroutines remain above the pre-run baseline. The echo sink's
// accept loop (1 goroutine) is excluded from the count via the slack of
// comparing against the recorded baseline after its listener kept running.
func residualGoroutines(baseline int) int {
	deadline := time.Now().Add(3 * time.Second)
	for {
		// +1 tolerates the echo sink's accept goroutine, which has no
		// shutdown handle by design (process exit reaps it).
		n := runtime.NumGoroutine() - baseline - 1
		if n <= 0 || time.Now().After(deadline) {
			if n < 0 {
				n = 0
			}
			return n
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// printTunnelCounters summarizes the admission story of the run.
func printTunnelCounters(reg *obs.Registry) {
	get := func(name string) int64 {
		switch m := reg.Get(name).(type) {
		case *obs.Counter:
			return m.Value()
		case *obs.Gauge:
			return m.Value()
		}
		return 0
	}
	fmt.Printf("tunnel: accepted=%d shed=%d peak_active=%d idle_timeouts=%d\n",
		get("tunnel.conns.accepted"), get("tunnel.conns.shed"),
		get("tunnel.conns.peak"), get("tunnel.idle_timeouts"))
}
