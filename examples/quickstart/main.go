// Quickstart: compress a byte stream adaptively and read it back.
//
// The writer cuts the stream into 128 KB blocks and picks a compression
// level for each decision window from the observed application data rate;
// the reader decodes whatever mix of levels arrives, because every block
// header names its codec.
//
// The destination here is throttled to 20 MB/s — the situation the paper
// targets, where the I/O path (a shared cloud NIC) is the bottleneck. Watch
// the decision windows: the scheme starts uncompressed, probes LIGHT, sees
// the application rate jump well past the wire cap, and stays there.
//
// Run with: go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"time"

	"adaptio"
	"adaptio/internal/corpus"
	"adaptio/internal/ratelimit"
)

func main() {
	// 24 MB of fax-like, highly compressible data (the paper's ptt5
	// stand-in).
	data := corpus.Generate(corpus.High, 24<<20, 1)

	var wire bytes.Buffer
	slow, err := ratelimit.NewWriter(&wire, 20e6, 128<<10)
	if err != nil {
		log.Fatal(err)
	}
	names := adaptio.DefaultLadder().Names()
	w, err := adaptio.NewWriter(slow, adaptio.WriterConfig{
		// A short window so this small example makes several decisions;
		// production uses the paper's default of 2 s.
		Window: 50 * time.Millisecond,
		OnWindow: func(ws adaptio.WindowStat) {
			fmt.Printf("window: app %7.1f MB/s at %-6s -> next %s\n",
				ws.Rate/1e6, names[ws.Level], names[ws.NextLevel])
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	// Feed the stream in small writes, as an application would.
	for off := 0; off < len(data); off += 64 << 10 {
		if _, err := w.Write(data[off : off+64<<10]); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}

	st := w.Stats()
	fmt.Printf("\napp bytes:  %d\n", st.AppBytes)
	fmt.Printf("wire bytes: %d (ratio %.3f over a 20 MB/s wire)\n",
		st.WireBytes, float64(st.WireBytes)/float64(st.AppBytes))
	fmt.Printf("blocks:     %d (%d stored raw), %d level switches\n",
		st.Blocks, st.RawFallbacks, st.LevelSwitches)
	for lvl, blocks := range st.BlocksPerLevel {
		if blocks > 0 {
			fmt.Printf("  %-7s %d blocks\n", names[lvl], blocks)
		}
	}

	r, err := adaptio.NewReader(&wire)
	if err != nil {
		log.Fatal(err)
	}
	out, err := io.ReadAll(r)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		log.Fatal("round trip mismatch")
	}
	fmt.Println("round trip: OK")
}
