// Netstream: adaptive compression over a real TCP connection with a
// constrained wire.
//
// A receiver listens on loopback; the sender pushes the paper's three data
// kinds through an adaptive writer whose wire side is throttled to emulate
// the bandwidth a cloud tenant actually gets on a shared NIC. On
// compressible data the application-level throughput climbs well above the
// wire cap — the paper's core effect — while on incompressible data the
// scheme backs off to level NO instead of burning CPU.
//
// Run with: go run ./examples/netstream
package main

import (
	"fmt"
	"io"
	"log"
	"net"
	"time"

	"adaptio"
	"adaptio/internal/corpus"
	"adaptio/internal/ratelimit"
)

// wireCapMBps emulates the shared-NIC share available to this tenant.
const wireCapMBps = 12.0

func main() {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()

	for _, kind := range corpus.Kinds() {
		done := make(chan int64, 1)
		go receiver(ln, done)
		sendOne(ln.Addr().String(), kind)
		<-done
	}
}

func receiver(ln net.Listener, done chan<- int64) {
	conn, err := ln.Accept()
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	r, err := adaptio.NewReader(conn)
	if err != nil {
		log.Fatal(err)
	}
	n, err := io.Copy(io.Discard, r)
	if err != nil {
		log.Fatalf("receiver: %v", err)
	}
	done <- n
}

func sendOne(addr string, kind corpus.Kind) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	limited, err := ratelimit.NewWriter(conn, wireCapMBps*1e6, 64<<10)
	if err != nil {
		log.Fatal(err)
	}
	w, err := adaptio.NewWriter(limited, adaptio.WriterConfig{
		Window: 100 * time.Millisecond, // scaled-down t for a short demo
	})
	if err != nil {
		log.Fatal(err)
	}

	const volume = 48 << 20
	start := time.Now()
	if _, err := io.CopyN(w, corpus.NewFileReader(kind, 1), volume); err != nil {
		log.Fatal(err)
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	st := w.Stats()
	names := adaptio.DefaultLadder().Names()
	fmt.Printf("%-9s %6.1f MB/s app over a %.0f MB/s wire (ratio %.2f, switches %d, levels:",
		kind, float64(st.AppBytes)/1e6/elapsed.Seconds(), wireCapMBps,
		float64(st.WireBytes)/float64(st.AppBytes), st.LevelSwitches)
	for lvl, blocks := range st.BlocksPerLevel {
		if blocks > 0 {
			fmt.Printf(" %s=%d", names[lvl], blocks)
		}
	}
	fmt.Println(")")
}
