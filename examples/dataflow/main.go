// Dataflow: a Nephele job with transparently compressed channels.
//
// The paper integrated its adaptive compression into the Nephele parallel
// data processing framework: tasks exchange records over network and file
// channels, and the compression module sits invisibly inside the channel.
// This example runs a three-stage job — log generator -> parallel filter ->
// aggregating sink — where the generator->filter hop uses an adaptively
// compressed TCP network channel and the filter->sink hop an adaptively
// compressed file channel. The task code never mentions compression.
//
// Run with: go run ./examples/dataflow
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"sync/atomic"

	"adaptio/internal/corpus"
	"adaptio/internal/nephele"
)

func main() {
	const records = 20000

	g := nephele.NewJobGraph("weblog-analytics")

	// Source: synthesizes English-like log lines (MODERATE
	// compressibility, like real text logs).
	gen := g.AddVertex("generator", nephele.SourceFunc(
		func(ctx *nephele.TaskContext, emit func([]byte) error) error {
			text := corpus.Generate(corpus.Moderate, records*64, uint64(ctx.Subtask)+1)
			for i := 0; i < records; i++ {
				line := text[i*64 : (i+1)*64]
				if err := emit(line); err != nil {
					return err
				}
			}
			return nil
		}), 1)

	// Filter: four parallel subtasks keep only lines mentioning "the"
	// and tag them.
	filter := g.AddVertex("filter", nephele.MapFunc(
		func(rec []byte, emit func([]byte) error) error {
			if !bytes.Contains(rec, []byte("the")) {
				return nil
			}
			return emit(append([]byte("hit: "), rec...))
		}), 4)

	// Sink: counts surviving records.
	var hits int64
	sink := g.AddVertex("sink", nephele.SinkFunc(func(rec []byte) error {
		atomic.AddInt64(&hits, 1)
		return nil
	}), 1)

	if _, err := g.Connect(gen, filter, nephele.ChannelSpec{
		Type:        nephele.Network,
		Compression: nephele.CompressionAdaptive,
	}); err != nil {
		log.Fatal(err)
	}
	// The file channel pins LIGHT: staged files are classic compression
	// territory, and a pinned level shows the wire shrinking while the
	// task code stays untouched. (The network hop stays adaptive; on an
	// uncontended loopback the rate-based model correctly settles at NO —
	// compression only pays when the wire is the bottleneck.)
	if _, err := g.Connect(filter, sink, nephele.ChannelSpec{
		Type:        nephele.File,
		Compression: nephele.CompressionStatic,
		StaticLevel: 1,
	}); err != nil {
		log.Fatal(err)
	}

	stats, err := (&nephele.Engine{}).Execute(context.Background(), g)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("job %q: %d/%d lines matched\n\n", g.Name(), hits, records)
	fmt.Print(stats.Render())
	fmt.Println("\nthe task code contains no compression logic: the channels chose it.")
	fmt.Println("\nexecution plan (pipe through `dot -Tsvg`):")
	fmt.Print(g.DOT())
}
