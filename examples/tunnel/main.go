// Tunnel: compress an unmodified TCP application's traffic adaptively.
//
// This example stands up the full paper deployment in one process: a plain
// TCP "legacy service" (an uppercasing echo), an exit proxy in front of it,
// and an entry proxy the client talks to. The client and the service use
// ordinary TCP — only the tunnel hop between entry and exit carries the
// adaptive compression stream, one independent decision model per
// direction.
//
// Run with: go run ./examples/tunnel
package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"time"

	"adaptio/internal/corpus"
	"adaptio/internal/tunnel"
)

func main() {
	// 1. The legacy service: uppercases whatever it receives.
	service, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		for {
			conn, err := service.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				data, _ := io.ReadAll(conn)
				conn.Write(bytes.ToUpper(data))
				conn.(*net.TCPConn).CloseWrite()
			}()
		}
	}()

	// 2. The tunnel: exit in front of the service, entry for the client.
	cfg := tunnel.Config{
		Window: 50 * time.Millisecond, // scaled-down t for a short demo
		OnDone: func(s tunnel.ConnStats) {
			if s.Stats.AppBytes == 0 {
				return
			}
			fmt.Printf("%-12s %8d app B -> %8d wire B (ratio %.3f)\n",
				s.Direction, s.Stats.AppBytes, s.Stats.WireBytes,
				float64(s.Stats.WireBytes)/float64(s.Stats.AppBytes))
		},
	}
	exit, err := tunnel.ListenExit(context.Background(), "127.0.0.1:0", service.Addr().String(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer exit.Close()
	entry, err := tunnel.ListenEntry(context.Background(), "127.0.0.1:0", exit.Addr().String(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer entry.Close()

	// 3. The client: plain TCP against the entry endpoint, no compression
	// code anywhere in sight.
	conn, err := net.Dial("tcp", entry.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	request := corpus.Generate(corpus.Moderate, 4<<20, 1) // English-like text
	go func() {
		conn.Write(request)
		conn.(*net.TCPConn).CloseWrite()
	}()
	response, err := io.ReadAll(conn)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(response, bytes.ToUpper(request)) {
		log.Fatal("response mismatch")
	}
	fmt.Printf("\nclient sent %d bytes of text, got the uppercased reply intact.\n", len(request))
	fmt.Println("neither the client nor the service knows the tunnel exists.")
	time.Sleep(200 * time.Millisecond) // let the direction stats flush
}
