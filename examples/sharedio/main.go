// Sharedio: quantify what co-located virtual machines cost you, and what
// adaptive compression buys back.
//
// This example drives the cloud simulator (the same engine behind the
// Table II reproduction): a sender VM on the paper's KVM-paravirt platform
// transfers 50 GB while 0..3 co-located VMs saturate the host NIC. For each
// contention level it compares no compression, the best static level, and
// the adaptive DYNAMIC scheme — showing that DYNAMIC tracks the best static
// choice without knowing the data or the contention in advance.
//
// Run with: go run ./examples/sharedio
package main

import (
	"fmt"
	"log"

	"adaptio/internal/cloudsim"
	"adaptio/internal/core"
	"adaptio/internal/corpus"
)

func main() {
	const volume = 50e9
	names := []string{"NO", "LIGHT", "MEDIUM", "HEAVY"}

	for _, kind := range corpus.Kinds() {
		fmt.Printf("=== %s data (%s-like) ===\n", kind, kind.FileName())
		fmt.Printf("%8s %10s %16s %12s %9s\n", "bg conns", "NO", "best static", "DYNAMIC", "speedup")
		for bg := 0; bg <= 3; bg++ {
			run := func(s cloudsim.Scheme) float64 {
				res, err := cloudsim.RunTransfer(cloudsim.TransferConfig{
					Platform:   cloudsim.KVMParavirt,
					Kind:       cloudsim.ConstantKind(kind),
					TotalBytes: volume,
					Background: bg,
					Scheme:     s,
					Profiles:   cloudsim.ReferenceProfiles(),
					Seed:       uint64(bg) + 7,
				})
				if err != nil {
					log.Fatal(err)
				}
				return res.CompletionSeconds
			}
			no := run(cloudsim.StaticScheme(0))
			bestT, bestName := no, "NO"
			for lvl := 1; lvl < 4; lvl++ {
				if t := run(cloudsim.StaticScheme(lvl)); t < bestT {
					bestT, bestName = t, names[lvl]
				}
			}
			dyn := run(core.MustNewDecider(core.Config{Levels: 4}))
			fmt.Printf("%8d %9.0fs %9.0fs (%s)%*s %11.0fs %8.1fx\n",
				bg, no, bestT, bestName, 6-len(bestName), "", dyn, no/dyn)
		}
		fmt.Println()
	}
	fmt.Println("speedup = completion time without compression / with DYNAMIC.")
	fmt.Println("The paper reports DYNAMIC within 22% of the best static level and")
	fmt.Println("up to 4x throughput gain under contention; compare the columns above.")
}
