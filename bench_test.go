// Benchmark harness: one testing.B benchmark per table and figure of the
// paper plus the ablations (DESIGN.md's experiment index). Each benchmark
// regenerates its experiment end to end and reports the headline numbers as
// benchmark metrics; the rendered table/figure is attached via b.Log (run
// with `go test -bench . -v` to see them, or use cmd/expdriver for plain
// output).
package adaptio_test

import (
	"testing"

	"adaptio/internal/cloudsim"
	"adaptio/internal/corpus"
	"adaptio/internal/experiments"
)

// benchVolume keeps the default `go test -bench .` run fast while preserving
// every shape property; cmd/expdriver defaults to the paper's full 50 GB.
const benchVolume = 10e9

// BenchmarkFig1CPUAccuracy regenerates Figure 1 (a)-(d): guest- vs
// host-reported CPU utilization for four I/O operations on five platforms,
// >= 120 one-second samples each.
func BenchmarkFig1CPUAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig1CPUAccuracy(120, 2011)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.RenderFig1(rows))
			var worst float64
			for _, r := range rows {
				if g := r.GapFactor(); g > worst {
					worst = g
				}
			}
			b.ReportMetric(worst, "worst-gap-x")
		}
	}
}

// BenchmarkFig2NetThroughputDist regenerates Figure 2: the distribution of
// network send throughput observed inside the sending VM.
func BenchmarkFig2NetThroughputDist(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig2NetThroughput(benchVolume, 2011)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.RenderDist("Figure 2", "MBit/s", rows))
			for _, r := range rows {
				if r.Platform == cloudsim.EC2 {
					b.ReportMetric(r.Summary.SD, "ec2-sd-MBit/s")
				}
			}
		}
	}
}

// BenchmarkFig3FileWriteDist regenerates Figure 3: file-write throughput
// distributions including the XEN host-cache anomaly.
func BenchmarkFig3FileWriteDist(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig3FileWriteThroughput(benchVolume, 2011)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.RenderDist("Figure 3", "MB/s", rows))
			for _, r := range rows {
				if r.Platform == cloudsim.XenParavirt {
					b.ReportMetric(float64(r.CacheResidentBytes)/1e9, "xen-cached-GB")
				}
			}
		}
	}
}

// BenchmarkTableIICompletionTimes regenerates the paper's central Table II:
// mean (SD) completion times for every compressibility x contention x scheme
// cell. The reported metric is the worst DYNAMIC-vs-best-static gap across
// the grid (the paper's bound is 22%).
func BenchmarkTableIICompletionTimes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableII(experiments.TableIIConfig{
			TotalBytes: benchVolume,
			Runs:       3,
			Platform:   cloudsim.KVMParavirt,
			Seed:       2011,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Render())
			worst := 0.0
			for _, kind := range res.Kinds {
				for _, bg := range res.Backgrounds {
					if g := res.DynamicGap(kind, bg); g > worst {
						worst = g
					}
				}
			}
			b.ReportMetric(worst*100, "worst-dyn-gap-%")
			no := res.Cells[corpus.High][3][0].Mean
			dyn := res.Cells[corpus.High][3][experiments.Dynamic].Mean
			b.ReportMetric(no/dyn, "max-speedup-x")
		}
	}
}

// BenchmarkFig4TraceHighNoLoad regenerates Figure 4: the adaptivity trace on
// highly compressible data with no background traffic.
func BenchmarkFig4TraceHighNoLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr, err := experiments.Fig4Trace(benchVolume, 2011)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tr.Render("Figure 4", experiments.LevelNames, 100))
			b.ReportMetric(tr.LevelOccupancy()[1]*100, "light-occupancy-%")
			b.ReportMetric(float64(tr.Switches()), "switches")
		}
	}
}

// BenchmarkFig5TraceLowTwoConns regenerates Figure 5: poorly compressible
// data under contention, where probing continues throughout.
func BenchmarkFig5TraceLowTwoConns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr, err := experiments.Fig5Trace(benchVolume, 2011)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tr.Render("Figure 5", experiments.LevelNames, 100))
			b.ReportMetric(float64(tr.Switches()), "switches")
		}
	}
}

// BenchmarkFig6CompressibilitySwitch regenerates Figure 6: HIGH and LOW data
// alternating every 10 GB over a 50 GB transfer.
func BenchmarkFig6CompressibilitySwitch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr, err := experiments.Fig6Switch(experiments.FiftyGB, 2011)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tr.Render("Figure 6", experiments.LevelNames, 100))
			occ := tr.LevelOccupancy()
			b.ReportMetric(occ[0]*100, "no-occupancy-%")
			b.ReportMetric(occ[1]*100, "light-occupancy-%")
		}
	}
}

// BenchmarkAblationAlphaSweep regenerates ablation A1: the tolerance band α.
func BenchmarkAblationAlphaSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationAlpha(nil, benchVolume, 2011)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.RenderAblation("Ablation A1: alpha sweep", rows))
		}
	}
}

// BenchmarkAblationWindowSweep regenerates ablation A2: the decision
// interval t.
func BenchmarkAblationWindowSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationWindow(nil, benchVolume, 2011)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.RenderAblation("Ablation A2: window sweep", rows))
		}
	}
}

// BenchmarkAblationBackoff regenerates ablation A3: exponential backoff
// on/off/capped.
func BenchmarkAblationBackoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationBackoff(benchVolume, 2011)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.RenderAblation("Ablation A3: backoff", rows))
			b.ReportMetric(rows[1].CompletionSeconds/rows[0].CompletionSeconds, "no-backoff-slowdown-x")
		}
	}
}

// BenchmarkAblationBaselines regenerates ablation A4: the related-work
// decision models under virtualized metrics.
func BenchmarkAblationBaselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationBaselines(benchVolume, 2011)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.RenderBaselines(rows))
		}
	}
}

// BenchmarkAblationFileChannel regenerates ablation A5 (the paper's future
// work): adaptive compression on file channels, including the XEN host-cache
// distortion.
func BenchmarkAblationFileChannel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.FileChannel(benchVolume, 2011)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.RenderFileChannel(rows))
			for _, r := range rows {
				if r.Platform == cloudsim.XenParavirt && r.Kind == corpus.Low && r.Scheme == "DYNAMIC" {
					b.ReportMetric(float64(r.LevelSwitches), "xen-low-switches")
					b.ReportMetric(r.CacheResidentGB, "xen-low-cached-GB")
				}
			}
		}
	}
}

// BenchmarkAblationLadder regenerates ablation A6: the paper's four-level
// ladder vs the six-level extended ladder, both live-calibrated from this
// machine's codecs.
func BenchmarkAblationLadder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationLadder(benchVolume, 2011)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.RenderLadder(rows))
		}
	}
}

// BenchmarkRealTableII runs the real-bytes Table II analogue: actual codecs
// and corpus over a rate-limited real TCP loopback (wall-clock bound; one
// wire rate, reduced volume — cmd/realbench runs the full sweep).
func BenchmarkRealTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := experiments.RealTableII(experiments.RealTableIIConfig{
			VolumeBytes: 8 << 20,
			WireMBps:    []float64{10},
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.RenderRealTableII(cells))
			for _, c := range cells {
				if c.Kind == corpus.High && c.Scheme == "DYNAMIC" {
					b.ReportMetric(c.AppMBps, "high-dynamic-MB/s")
				}
			}
		}
	}
}

// BenchmarkCodecCalibration measures this repository's real codecs on the
// synthetic corpus — the live counterpart to the paper-derived reference
// profiles (compare the two in the logged table).
func BenchmarkCodecCalibration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ms, _, err := experiments.Calibrate(2 << 20)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.RenderCalibration(ms))
		}
	}
}
