module adaptio

go 1.23
