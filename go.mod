module adaptio

go 1.24
