#!/bin/sh
# Smoke test: build every binary and exercise each one briefly.
# Exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."
BIN=$(mktemp -d)
trap 'rm -rf "$BIN"' EXIT

echo "== build =="
for cmd in expdriver acprobe acpipe acsend acrecv actunnel realbench; do
  go build -o "$BIN/$cmd" "./cmd/$cmd"
done

echo "== expdriver (claims checklist, reduced volume) =="
"$BIN/expdriver" -claims -gb 10 -runs 2 | grep 'claims reproduced'

echo "== acprobe (simulated fig2) =="
"$BIN/acprobe" -gb 1 | grep -c 'Figure'

echo "== acpipe round trip =="
head -c 1048576 /dev/urandom > "$BIN/in.bin"
"$BIN/acpipe" < "$BIN/in.bin" > "$BIN/in.ac"
"$BIN/acpipe" -d < "$BIN/in.ac" > "$BIN/out.bin"
cmp "$BIN/in.bin" "$BIN/out.bin" && echo "acpipe OK"

echo "== acsend/acrecv =="
"$BIN/acrecv" -listen 127.0.0.1:9971 -once &
RECV=$!
sleep 0.5
"$BIN/acsend" -addr 127.0.0.1:9971 -gb 0.02 -kind HIGH -window 50ms | head -1
wait $RECV

echo "== actunnel: acsend -> entry -> exit -> acrecv =="
"$BIN/acrecv" -listen 127.0.0.1:9972 -once >/dev/null &
SINK=$!
"$BIN/actunnel" -mode exit -listen 127.0.0.1:9973 -target 127.0.0.1:9972 -q &
EXIT_T=$!
"$BIN/actunnel" -mode entry -listen 127.0.0.1:9974 -target 127.0.0.1:9973 -q &
ENTRY_T=$!
sleep 0.5
"$BIN/acsend" -addr 127.0.0.1:9974 -gb 0.01 -kind MODERATE -window 50ms | head -1
sleep 0.5
kill $ENTRY_T $EXIT_T 2>/dev/null || true
wait $SINK 2>/dev/null || true

echo "== realbench (one tiny cell sweep) =="
"$BIN/realbench" -mb 4 -wires 40 | head -4

echo "smoke: ALL OK"
